//! End-to-end tests of the scenario service with the real workload:
//! an in-process [`Server`] running [`SpecService`], exercised over real
//! sockets with registry specs.
//!
//! The load-bearing assertion is byte-identity: the JSONL a client
//! streams from `/v1/runs/{id}/stream` must equal what `xp run <name>
//! --stream` writes to stdout, for the same spec and seed. The CLI path
//! is [`Runner::run_streamed`]; both are compared against it here.

use noisy_bench::registry;
use noisy_bench::runner::Runner;
use noisy_bench::service::SpecService;
use noisy_bench::spec::ScenarioSpec;
use noisy_bench::Scale;
use noisy_serve::http::{self, Response};
use noisy_serve::{Server, ServerConfig, ServerHandle};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn start_server() -> ServerHandle<SpecService> {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerConfig::default()
    };
    Server::start(config, SpecService).expect("server starts")
}

fn cli_stream_bytes(spec: &ScenarioSpec) -> Vec<u8> {
    let mut out = Vec::new();
    Runner::new(spec.clone())
        .and_then(|r| r.run_streamed(&mut out))
        .expect("reference run succeeds");
    out
}

fn json_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat).unwrap_or_else(|| panic!("no {key} in {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key} in {json}"))
}

fn submit(addr: SocketAddr, spec_text: &str) -> Response {
    let response =
        http::request(addr, "POST", "/v1/runs", spec_text.as_bytes()).expect("submit completes");
    assert_eq!(response.status, 202, "{}", response.text());
    response
}

fn wait_for_done(addr: SocketAddr, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = http::request(addr, "GET", &format!("/v1/runs/{id}"), b"")
            .expect("status completes");
        let text = status.text();
        assert!(!text.contains("\"failed\""), "job {id} failed: {text}");
        if text.contains("\"done\"") {
            return;
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {text}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn stream_bytes(addr: SocketAddr, id: u64) -> Vec<u8> {
    let response = http::request(addr, "GET", &format!("/v1/runs/{id}/stream"), b"")
        .expect("stream completes");
    assert_eq!(response.status, 200);
    response.body
}

fn stats(addr: SocketAddr) -> String {
    http::request(addr, "GET", "/v1/stats", b"")
        .expect("stats completes")
        .text()
}

/// The f2 experiment (quick scale) round-trips through the service
/// byte-for-byte, and resubmitting it is served from the cache without
/// recomputation.
#[test]
fn f2_stream_is_byte_identical_to_cli_and_cached_on_resubmit() {
    let spec = registry::find("f2")
        .expect("f2 registered")
        .spec(Scale::Quick)
        .expect("f2 is spec-backed");
    let expected = cli_stream_bytes(&spec);
    let handle = start_server();
    let addr = handle.addr();

    let first = submit(addr, &spec.to_text());
    let id = json_u64(&first.text(), "id");
    wait_for_done(addr, id);
    assert_eq!(
        stream_bytes(addr, id),
        expected,
        "served stream must match `xp run f2 --stream` byte-for-byte"
    );

    let second = submit(addr, &spec.to_text());
    assert!(second.text().contains("\"cached\":true"), "{}", second.text());
    assert_eq!(stream_bytes(addr, json_u64(&second.text(), "id")), expected);
    let stats = stats(addr);
    assert!(json_u64(&stats, "hits") >= 1, "{stats}");
    assert_eq!(json_u64(&stats, "completed"), 1, "no recompute: {stats}");
    handle.shutdown_and_wait();
}

/// A sweep and a later single-point spec that lands on one of the
/// sweep's grid cells share cached cells: the single-point run is
/// assembled from stored rows (a cell hit), and its bytes still match
/// its own CLI stream exactly.
#[test]
fn sweep_cells_are_reused_across_submissions() {
    let sweep = ScenarioSpec::from_text(
        "scenario = rumor\nsource = 0\nn = 300\nk = 2\nepsilon = 0.3\n\
         noise = uniform(0.3)\ntrials = 2\nseed = 11\nsweep.eps = 0.25, 0.3, 0.35\n",
    )
    .expect("valid sweep spec");
    let mut single = sweep.clone();
    single.sweep = Default::default();
    single.epsilon = 0.35;
    single.noise = single.noise.with_epsilon(0.35);

    let handle = start_server();
    let addr = handle.addr();

    let first = submit(addr, &sweep.to_text());
    wait_for_done(addr, json_u64(&first.text(), "id"));
    let after_sweep = stats(addr);
    assert_eq!(json_u64(&after_sweep, "cell_hits"), 0, "{after_sweep}");
    let warmed_misses = json_u64(&after_sweep, "cell_misses");
    assert_eq!(warmed_misses, 3, "one miss per grid point: {after_sweep}");

    let second = submit(addr, &single.to_text());
    let single_id = json_u64(&second.text(), "id");
    wait_for_done(addr, single_id);
    assert_eq!(stream_bytes(addr, single_id), cli_stream_bytes(&single));
    let after_single = stats(addr);
    assert_eq!(
        json_u64(&after_single, "cell_hits"),
        1,
        "the single-point run must reuse the sweep's cell: {after_single}"
    );
    assert_eq!(json_u64(&after_single, "cell_misses"), warmed_misses, "{after_single}");
    handle.shutdown_and_wait();
}
