//! Property tests for the scenario spec text format: every valid
//! [`ScenarioSpec`] serializes to text that parses back to an equal spec,
//! and the serialization is canonical.

use noisy_bench::spec::{InitSpec, Metric, ObserveMode, ScenarioKind, ScenarioSpec, StopSpec, SweepAxes};
use noisy_channel::NoiseSpec;
use opinion_dynamics::RuleSpec;
use plurality_core::ExecutionBackend;
use proptest::prelude::*;
use pushsim::{
    BurstChurn, ByzantineFault, ChurnSpec, ClockSpec, CrashFault, DeliverySemantics, FaultSpec,
    NoiseSchedule, TopologySpec,
};

fn noise_strategy() -> impl Strategy<Value = NoiseSpec> {
    prop_oneof![
        (0.01f64..0.6).prop_map(|epsilon| NoiseSpec::Uniform { epsilon }),
        (0.01f64..0.5).prop_map(|epsilon| NoiseSpec::BinaryFlip { epsilon }),
        (0.01f64..0.49).prop_map(|lambda| NoiseSpec::Cyclic { lambda }),
        ((0.01f64..0.99), 0usize..4)
            .prop_map(|(lambda, target)| NoiseSpec::Reset { lambda, target }),
        (0.01f64..0.5).prop_map(|epsilon| NoiseSpec::DiagonallyDominant { epsilon }),
        ((0.3f64..0.7), (0.05f64..0.2), (0.0f64..0.1)).prop_map(|(p, q_low, extra)| {
            NoiseSpec::Band {
                p,
                q_low,
                q_high: q_low + extra,
            }
        }),
    ]
}

/// Topologies that are feasible for every generated `n` (all generated
/// node counts are ≥ 100): even regular degrees keep `n·d` even for odd
/// `n`, and the torus (which needs perfect-square `n`) is covered by unit
/// tests instead.
fn topology_strategy() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        Just(TopologySpec::Complete),
        Just(TopologySpec::Ring),
        (1usize..6).prop_map(|half| TopologySpec::RandomRegular { degree: 2 * half }),
        (0.001f64..1.0).prop_map(|p| TopologySpec::ErdosRenyi { p }),
    ]
}

/// Fault specs valid for a `k`-opinion protocol by construction:
/// probabilities stay inside `[0, 1]`, the Byzantine opinion is below
/// `k`, and the crashed + Byzantine fractions sum below 1 (each stays
/// under 0.5). Crash phases are small so they can be clamped against any
/// generated `stop.max_rounds`. All-disabled specs (`none`) are generated
/// too and must round-trip like any other value.
fn fault_strategy(k: usize) -> impl Strategy<Value = FaultSpec> {
    (
        prop::option::of(0.01f64..1.0),
        prop::option::of(0.01f64..1.0),
        prop::option::of(0.01f64..1.0),
        prop::option::of(((0.01f64..0.5), 0u64..4)),
        prop::option::of(((0.01f64..0.5), 0..k)),
    )
        .prop_map(|(drop, duplicate, delay, crash, byzantine)| FaultSpec {
            drop: drop.unwrap_or(0.0),
            duplicate: duplicate.unwrap_or(0.0),
            delay: delay.unwrap_or(0.0),
            crash: crash.map(|(fraction, after_phase)| CrashFault {
                fraction,
                after_phase,
            }),
            byzantine: byzantine.map(|(fraction, opinion)| ByzantineFault { fraction, opinion }),
        })
}

/// Population-churn specs valid for a `k`-opinion protocol by
/// construction: rates stay below 0.3 (so `leave + burst.fraction < 1`),
/// the optional join opinion is below `k`, and `rewire` stays 0 — edge
/// churn composes only with resampleable topologies and is covered by the
/// spec module's unit tests instead. All-disabled specs (`none`) are
/// generated too and must round-trip like any other value.
fn churn_strategy(k: usize) -> impl Strategy<Value = ChurnSpec> {
    (
        prop::option::of(((0.01f64..0.3), prop::option::of(0..k))),
        prop::option::of(0.01f64..0.3),
        prop::option::of(((0.01f64..0.3), 0u64..4)),
    )
        .prop_map(|(join, leave, burst)| ChurnSpec {
            join: join.map_or(0.0, |(rate, _)| rate),
            join_opinion: join.and_then(|(_, opinion)| opinion),
            leave: leave.unwrap_or(0.0),
            burst: burst.map(|(fraction, after_phase)| BurstChurn {
                fraction,
                after_phase,
            }),
            rewire: 0.0,
        })
}

/// Noise schedules whose ε values are valid for every generated `k ≥ 2`
/// (the uniform family needs `ε ≤ 1 − 1/k`, so ε stays below 0.45).
fn schedule_strategy() -> impl Strategy<Value = NoiseSchedule> {
    prop_oneof![
        Just(NoiseSchedule::Const),
        ((0.01f64..0.45), 0u64..6)
            .prop_map(|(epsilon, from_phase)| NoiseSchedule::Step { epsilon, from_phase }),
        ((0.01f64..0.45), 0u64..6, 1u64..4).prop_map(|(epsilon, start_phase, width)| {
            NoiseSchedule::Burst {
                epsilon,
                start_phase,
                width,
            }
        }),
        ((0.01f64..0.45), (0.01f64..0.45), 1u64..8)
            .prop_map(|(start, end, over_phases)| NoiseSchedule::Ramp {
                start,
                end,
                over_phases,
            }),
    ]
}

fn clock_strategy() -> impl Strategy<Value = ClockSpec> {
    prop_oneof![
        Just(ClockSpec::Sync),
        (1.0f64..500_000.0).prop_map(|ppm| ClockSpec::Drift { ppm }),
        (0.01f64..0.99).prop_map(|miss| ClockSpec::Skew { miss }),
    ]
}

fn rule_strategy() -> impl Strategy<Value = RuleSpec> {
    prop_oneof![
        Just(RuleSpec::Voter),
        Just(RuleSpec::ThreeMajority),
        (1u32..100).prop_map(|h| RuleSpec::HMajority { h }),
        Just(RuleSpec::Undecided),
        Just(RuleSpec::Median),
    ]
}

fn init_strategy(k: usize) -> impl Strategy<Value = InitSpec> {
    prop_oneof![
        (0.0f64..0.9).prop_map(|bias| InitSpec::Biased { bias }),
        prop::collection::vec(1usize..10_000, k).prop_map(|mut counts| {
            // Valid specs need a unique plurality opinion.
            let max = counts.iter().max().copied().unwrap_or(0);
            counts[0] = max + 1;
            InitSpec::Counts(counts)
        }),
    ]
}

/// A kind consistent with the opinion count `k` by construction: the rumor
/// source is below `k` and explicit counts have exactly `k` entries.
fn kind_strategy(k: usize) -> impl Strategy<Value = ScenarioKind> {
    prop_oneof![
        (0..k).prop_map(|source| ScenarioKind::RumorSpreading { source }),
        init_strategy(k).prop_map(|init| ScenarioKind::PluralityConsensus { init }),
        init_strategy(k).prop_map(|init| ScenarioKind::Stage2Only { init }),
        (rule_strategy(), init_strategy(k), prop::option::of(1u64..100_000)).prop_map(
            |(rule, init, rounds)| ScenarioKind::DynamicsRule { rule, init, rounds }
        ),
        ((1u64..500), (0.0f64..0.9))
            .prop_map(|(ell, delta)| ScenarioKind::SampleMajorityGap { ell, delta }),
        ((1u64..100), init_strategy(k))
            .prop_map(|(rounds, init)| ScenarioKind::PhaseStats { rounds, init }),
    ]
}

/// Sweep axes consistent with the kind: a bias axis only for biased
/// initial configurations, no k axis (so per-k structures like explicit
/// counts stay valid), ell/delta axes only for gap scenarios, a delivery
/// axis only for phase scenarios.
fn sweep_strategy(kind: &ScenarioKind) -> BoxedStrategy<SweepAxes> {
    match kind {
        ScenarioKind::SampleMajorityGap { .. } => (
            prop::collection::vec(1u64..500, 0..3),
            prop::collection::vec(0.0f64..0.9, 0..3),
        )
            .prop_map(|(ell, delta)| SweepAxes {
                ell,
                delta,
                ..SweepAxes::default()
            })
            .boxed(),
        ScenarioKind::PhaseStats { .. } => {
            prop::collection::vec(prop::sample::select(DeliverySemantics::ALL.to_vec()), 0..3)
                .prop_map(|delivery| SweepAxes {
                    delivery,
                    ..SweepAxes::default()
                })
                .boxed()
        }
        _ => {
            let bias_axis: BoxedStrategy<Vec<f64>> =
                if matches!(kind.init(), Some(InitSpec::Biased { .. })) {
                    prop::collection::vec(0.0f64..0.9, 0..3).boxed()
                } else {
                    Just(Vec::new()).boxed()
                };
            (
                prop::collection::vec(100usize..50_000, 0..3),
                prop::collection::vec(0.01f64..0.6, 0..4),
                bias_axis,
            )
                .prop_map(|(n, eps, bias)| SweepAxes {
                    n,
                    eps,
                    bias,
                    ..SweepAxes::default()
                })
                .boxed()
        }
    }
}

/// An observe mode consistent with the kind (only the simulating kinds
/// support trajectory / per-phase observation).
fn observe_strategy(kind: &ScenarioKind) -> BoxedStrategy<ObserveMode> {
    if kind.is_protocol() || matches!(kind, ScenarioKind::DynamicsRule { .. }) {
        prop::sample::select(vec![
            ObserveMode::Summary,
            ObserveMode::Trajectory,
            ObserveMode::Phases,
        ])
        .boxed()
    } else {
        Just(ObserveMode::Summary).boxed()
    }
}

/// Stop conditions consistent with the kind (empty for the
/// below-simulation kinds).
fn stop_strategy(kind: &ScenarioKind) -> BoxedStrategy<StopSpec> {
    if kind.is_protocol() || matches!(kind, ScenarioKind::DynamicsRule { .. }) {
        (
            prop::option::of(1u64..1_000_000),
            prop::sample::select(vec![false, true]),
            prop::option::of(0.01f64..1.0),
            prop::option::of((1usize..10, 0.0f64..0.5)),
        )
            .prop_map(|(max_rounds, consensus, bias, plateau)| StopSpec {
                max_rounds,
                consensus,
                bias,
                plateau,
            })
            .boxed()
    } else {
        Just(StopSpec::default()).boxed()
    }
}

fn metrics_strategy(kind: &ScenarioKind) -> BoxedStrategy<Vec<Metric>> {
    let pool: Vec<Metric> = Metric::ALL
        .into_iter()
        .filter(|m| m.supported_by(kind))
        .collect();
    prop::collection::vec(prop::sample::select(pool), 0..5).boxed()
}

fn spec_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (2usize..6)
        .prop_flat_map(|k| (Just(k), kind_strategy(k)))
        .prop_flat_map(|(k, kind)| {
            let sweep = sweep_strategy(&kind);
            let metrics = metrics_strategy(&kind);
            let observe = observe_strategy(&kind);
            let stop = stop_strategy(&kind);
            // Faults apply only to protocol scenarios; everything else
            // keeps the all-disabled default.
            let faults: BoxedStrategy<(FaultSpec, Vec<FaultSpec>)> = if kind.is_protocol() {
                (
                    fault_strategy(k),
                    prop::collection::vec(fault_strategy(k), 0..3),
                )
                    .boxed()
            } else {
                Just((FaultSpec::none(), Vec::new())).boxed()
            };
            (
                (Just(k), Just(kind), 100usize..100_000, 0.01f64..0.9),
                (
                    noise_strategy(),
                    prop::sample::select(DeliverySemantics::ALL.to_vec()),
                    prop::sample::select(vec![
                        ExecutionBackend::Agent,
                        ExecutionBackend::Counting,
                        ExecutionBackend::Auto,
                    ]),
                ),
                (1u64..50, 0u64..u64::MAX, sweep, metrics),
                (0.01f64..1.0, 0.5f64..4.0),
                (observe, stop, faults),
                (
                    (
                        topology_strategy(),
                        prop::collection::vec(topology_strategy(), 0..3),
                    ),
                    (
                        churn_strategy(k),
                        prop::collection::vec(churn_strategy(k), 0..3),
                        schedule_strategy(),
                        prop::collection::vec(schedule_strategy(), 0..3),
                        clock_strategy(),
                    ),
                ),
            )
        })
        .prop_map(|(base, channel, run, consts, watch, (topo, temporal))| {
            let (k, kind, n, epsilon) = base;
            let (noise, delivery, backend) = channel;
            let (trials, seed, sweep, metrics) = run;
            let (observe, stop, (fault, fault_axis)) = watch;
            let (topology, topology_axis) = topo;
            let (churn, churn_axis, schedule, schedule_axis, clock) = temporal;
            let mut spec = ScenarioSpec::new(kind, n, k);
            spec.epsilon = epsilon;
            spec.noise = noise;
            spec.delivery = delivery;
            spec.backend = backend;
            spec.trials = trials;
            spec.seed = seed;
            spec.sweep = sweep;
            // Delayed delivery needs a backend that can buffer messages
            // across phases (not counting), and a crash must be able to
            // activate before any round budget stops the run; repair the
            // generated faults where those static checks would fire.
            fn fix_fault(fault: &mut FaultSpec, counting: bool, max_rounds: Option<u64>) {
                if counting {
                    fault.delay = 0.0;
                }
                if let Some(max) = max_rounds {
                    match &mut fault.crash {
                        Some(crash) if max >= 2 => {
                            crash.after_phase = crash.after_phase.min(max - 2);
                        }
                        Some(_) => fault.crash = None,
                        None => {}
                    }
                }
            }
            spec.fault = fault;
            spec.sweep.fault = fault_axis;
            let counting = spec.backend == ExecutionBackend::Counting;
            fix_fault(&mut spec.fault, counting, stop.max_rounds);
            for fault in &mut spec.sweep.fault {
                fix_fault(fault, counting, stop.max_rounds);
            }
            let faults_enabled = !spec.fault.is_none() || !spec.sweep.fault.is_empty();
            // Non-complete topologies are only valid with exact delivery
            // on a non-counting backend, without faults (which require the
            // complete graph), and `gap` has no network at all; apply the
            // generated topology where it is consistent.
            let simulates = spec.kind.is_protocol()
                || matches!(
                    spec.kind,
                    ScenarioKind::DynamicsRule { .. } | ScenarioKind::PhaseStats { .. }
                );
            if simulates
                && spec.delivery == DeliverySemantics::Exact
                && spec.backend != ExecutionBackend::Counting
                && spec.sweep.delivery.is_empty()
                && !faults_enabled
            {
                spec.topology = topology;
                spec.sweep.topology = topology_axis;
            }
            // Temporal axes are protocol-only. Population churn further
            // requires the complete graph and no identity-pinning fault
            // (crash/byzantine/delay), a ramp schedule excludes an eps
            // sweep (it would override every swept ε), and non-sync
            // clocks cannot run on the counting backend; apply the
            // generated temporal values where they are consistent.
            if spec.kind.is_protocol() {
                let pins_identity = |f: &FaultSpec| {
                    f.crash.is_some() || f.byzantine.is_some() || f.delay > 0.0
                };
                if spec.topology.is_complete()
                    && spec.sweep.topology.is_empty()
                    && !pins_identity(&spec.fault)
                    && spec.sweep.fault.iter().all(|f| !pins_identity(f))
                {
                    spec.churn = churn;
                    spec.sweep.churn = churn_axis;
                }
                let eps_swept = !spec.sweep.eps.is_empty();
                fn fix_schedule(s: NoiseSchedule, eps_swept: bool) -> NoiseSchedule {
                    if eps_swept && matches!(s, NoiseSchedule::Ramp { .. }) {
                        NoiseSchedule::Const
                    } else {
                        s
                    }
                }
                spec.schedule = fix_schedule(schedule, eps_swept);
                spec.sweep.schedule = schedule_axis
                    .into_iter()
                    .map(|s| fix_schedule(s, eps_swept))
                    .collect();
                if spec.backend != ExecutionBackend::Counting {
                    spec.clock = clock;
                }
            }
            // The observe mode fixes the columns; explicit metrics are
            // only valid in summary mode.
            spec.observe = observe;
            if observe == ObserveMode::Summary {
                spec.metrics = metrics;
            }
            spec.stop = stop;
            // Exercise non-default constants while keeping the
            // phi > beta > s ordering the params builder validates.
            let (s, gap) = consts;
            spec.constants.set("s", s);
            spec.constants.set("beta", s + gap);
            spec.constants.set("phi", s + 2.0 * gap);
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Generated specs are valid by construction, and spec -> text -> spec
    /// is the identity for every one of them.
    #[test]
    fn text_form_round_trips(spec in spec_strategy()) {
        prop_assert!(spec.validate().is_ok(), "generator produced an invalid spec: {spec:?}");
        let text = spec.to_text();
        let parsed = ScenarioSpec::from_text(&text)
            .unwrap_or_else(|e| panic!("serialized spec must parse: {e}\n{text}"));
        prop_assert_eq!(parsed, spec);
    }

    /// Serialization is canonical: parsing and re-serializing reproduces
    /// byte-identical text.
    #[test]
    fn text_form_is_canonical(spec in spec_strategy()) {
        let text = spec.to_text();
        let reparsed = ScenarioSpec::from_text(&text).unwrap();
        prop_assert_eq!(reparsed.to_text(), text);
    }

    /// The content-address is stable under parse -> canonicalize ->
    /// parse: a spec file and its canonical round trip always map to
    /// the same cache key on the scenario service.
    #[test]
    fn canonical_digest_survives_round_trip(spec in spec_strategy()) {
        let text = spec.to_text();
        let reparsed = ScenarioSpec::from_text(&text).unwrap();
        prop_assert_eq!(reparsed.canonical_digest(), spec.canonical_digest());
        let reparsed_twice = ScenarioSpec::from_text(&reparsed.to_text()).unwrap();
        prop_assert_eq!(reparsed_twice.canonical_digest(), spec.canonical_digest());
    }

    /// The digest folds the seed in: equal canonical text with different
    /// seeds must not collide (the cache would otherwise serve one
    /// seed's rows for another).
    #[test]
    fn canonical_digest_separates_seeds(spec in spec_strategy()) {
        let mut reseeded = spec.clone();
        reseeded.seed = spec.seed.wrapping_add(1);
        prop_assert_ne!(reseeded.canonical_digest(), spec.canonical_digest());
    }
}

/// The digest algorithm (FNV-1a 64 over canonical text, then the seed's
/// little-endian bytes) is part of the service's on-the-wire contract:
/// cached results survive server restarts only if the digest never
/// drifts. Pin a known spec's digest so accidental changes to the
/// canonical text or the hash are caught here.
#[test]
fn canonical_digest_is_pinned() {
    let spec = ScenarioSpec::from_text(
        "scenario = rumor\nsource = 0\nn = 300\nk = 2\nepsilon = 0.3\n\
         noise = uniform(0.3)\ntrials = 2\nseed = 11\n",
    )
    .expect("valid spec");
    assert_eq!(spec.canonical_digest(), 0x6bb2_af56_26bf_4374);
}

/// Malformed fault configurations are caught statically — `from_text`
/// runs `validate()`, so fault campaigns fail at spec load, not per grid
/// cell at run time.
fn load_error(text: &str) -> String {
    ScenarioSpec::from_text(text)
        .expect_err("spec must be rejected at load time")
        .to_string()
}

#[test]
fn fault_probabilities_outside_the_unit_interval_are_rejected_statically() {
    let err =
        load_error("scenario = plurality\nbias = 0.2\nn = 500\nk = 3\nfault = drop(1.5)\n");
    assert!(
        err.contains("probability in [0, 1]"),
        "expected a probability-range error, got: {err}"
    );
}

#[test]
fn byzantine_opinions_must_name_a_real_opinion() {
    let err =
        load_error("scenario = plurality\nbias = 0.2\nn = 500\nk = 3\nfault = byz(0.1:3)\n");
    assert!(
        err.contains("out of range"),
        "expected an opinion-range error, got: {err}"
    );

    // The same check runs against every point of a k sweep, not just the
    // base k: opinion 3 is fine for k = 4 but not for the swept k = 2.
    let err = load_error(
        "scenario = rumor\nsource = 0\nn = 500\nk = 4\nsweep.k = 2, 4\nfault = byz(0.1:3)\n",
    );
    assert!(
        err.contains("out of range"),
        "swept k = 2 cannot satisfy byz opinion 3, got: {err}"
    );
}

#[test]
fn crashes_that_can_never_activate_are_rejected_statically() {
    let err = load_error(
        "scenario = plurality\nbias = 0.2\nn = 500\nk = 3\n\
         fault = crash(0.1@10)\nstop.max_rounds = 5\n",
    );
    assert!(
        err.contains("can never activate"),
        "expected a crash-vs-stop error, got: {err}"
    );

    // With a budget that does reach past the crash phase, the same spec
    // is fine.
    ScenarioSpec::from_text(
        "scenario = plurality\nbias = 0.2\nn = 500\nk = 3\n\
         fault = crash(0.1@10)\nstop.max_rounds = 500\n",
    )
    .expect("a reachable crash phase is valid");
}

#[test]
fn population_churn_outside_the_complete_graph_is_rejected_statically() {
    let err = load_error(
        "scenario = plurality\nbias = 0.2\nn = 500\nk = 3\n\
         topology = ring\nchurn = join(0.1)\n",
    );
    assert!(
        err.contains("complete graph"),
        "expected a churn-vs-topology error, got: {err}"
    );
}

#[test]
fn population_churn_with_identity_pinning_faults_is_rejected_statically() {
    let err = load_error(
        "scenario = plurality\nbias = 0.2\nn = 500\nk = 3\n\
         churn = leave(0.1)\nsweep.fault = none, crash(0.1@2)\n",
    );
    assert!(
        err.contains("identity-pinning"),
        "expected a churn-vs-fault error, got: {err}"
    );

    // Message-level faults compose fine.
    ScenarioSpec::from_text(
        "scenario = plurality\nbias = 0.2\nn = 500\nk = 3\n\
         churn = leave(0.1)\nsweep.fault = none, drop(0.2)\n",
    )
    .expect("churn composes with message-level faults");
}

#[test]
fn scheduled_epsilons_are_checked_against_every_swept_k() {
    // ε = 0.6 needs k ≥ 3 (the uniform family's ε ≤ 1 − 1/k bound).
    let err = load_error(
        "scenario = rumor\nsource = 0\nn = 500\nk = 3\n\
         sweep.k = 2, 3\nschedule = step(0.6@2)\n",
    );
    assert!(
        err.contains("step(0.6@2)"),
        "expected the schedule to be named in the error, got: {err}"
    );
}

#[test]
fn ramp_schedules_exclude_an_eps_sweep() {
    let err = load_error(
        "scenario = rumor\nsource = 0\nn = 500\nk = 3\n\
         sweep.eps = 0.1, 0.2\nschedule = ramp(0.1:0.4@6)\n",
    );
    assert!(
        err.contains("sweep.eps"),
        "expected a ramp-vs-eps-sweep error, got: {err}"
    );
}

#[test]
fn drifting_clocks_cannot_be_forced_onto_counting_backends() {
    let err = load_error(
        "scenario = rumor\nsource = 0\nn = 500\nk = 3\n\
         clock = drift(20000)\nbackend = counting\n",
    );
    assert!(
        err.contains("counting backends"),
        "expected a clock-vs-backend error, got: {err}"
    );
}
