//! Experiment F2 — Theorems 1 and 2: the round complexity scales as `1/ε²`.
//!
//! Fixes `n` and `k` and sweeps the noise parameter ε (using the uniform
//! ε-noise family, which is (ε·k/(k−1), δ)-m.p. for every δ). Reports the
//! success rate and the measured rounds, normalized by `ln n / ε²`: the
//! paper's prediction is a flat normalized constant across the sweep.

use gossip_analysis::table::Table;
use noisy_bench::{rumor_spreading_trials_on, Cli};
use noisy_channel::NoiseMatrix;
use plurality_core::{bounds, ProtocolParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = Cli::from_args();
    let scale = cli.scale;
    let n = scale.pick(2_000, 10_000);
    let k = 3;
    let epsilons = [0.1, 0.15, 0.2, 0.25, 0.3, 0.4];
    let trials = scale.pick(5, 30);

    cli.note(&format!(
        "F2: rounds to consensus vs eps (rumor spreading, n = {n}, k = {k})"
    ));
    cli.note("paper prediction: rounds ~ 1/eps^2, i.e. the normalized column stays flat\n");

    let mut table = Table::new(vec![
        "eps",
        "success",
        "rounds",
        "rounds / (ln n / eps^2)",
        "messages",
    ]);
    for &eps in &epsilons {
        let noise = NoiseMatrix::uniform(k, eps)?;
        let params = ProtocolParams::builder(n, k).epsilon(eps).seed(0xF2).build()?;
        let summary = rumor_spreading_trials_on(cli.backend, &params, &noise, trials);
        table.push_row(vec![
            format!("{eps}"),
            summary.success.to_string(),
            format!("{:.0}", summary.rounds.mean()),
            format!("{:.2}", summary.rounds.mean() / bounds::rounds_bound(n, eps)),
            format!("{:.2e}", summary.messages.mean()),
        ]);
    }
    cli.emit(&table);
    Ok(())
}
