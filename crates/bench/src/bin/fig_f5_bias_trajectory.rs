//! Experiment F5 — Lemma 7 and Lemma 12: the bias towards the correct
//! opinion survives Stage 1 at `Ω(√(log n / n))` and is then multiplied by a
//! constant factor per Stage 2 phase until it reaches 1.
//!
//! Runs a single (seeded) rumor-spreading execution and prints the full
//! per-phase trajectory: activation fraction, bias, and the per-phase
//! amplification ratio during Stage 2.

use gossip_analysis::table::Table;
use noisy_bench::Cli;
use noisy_channel::NoiseMatrix;
use plurality_core::{ProtocolParams, StageId, TwoStageProtocol};
use pushsim::Opinion;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = Cli::from_args();
    let n = cli.scale.pick(5_000, 50_000);
    let k = 3;
    let epsilon = 0.25;

    let noise = NoiseMatrix::uniform(k, epsilon)?;
    let params = ProtocolParams::builder(n, k).epsilon(epsilon).seed(0xF5).build()?;
    let protocol = TwoStageProtocol::new(params.clone(), noise)?;
    let outcome = protocol.run_rumor_spreading_on(cli.backend, Opinion::new(0))?;

    cli.note(&format!(
        "F5: per-phase bias trajectory (rumor spreading, n = {n}, k = {k}, eps = {epsilon})"
    ));
    cli.note(&format!(
        "stage-1 end-of-stage bias target Omega(sqrt(ln n / n)) = {:.4}; succeeded = {}\n",
        ((n as f64).ln() / n as f64).sqrt(),
        outcome.succeeded()
    ));

    let mut table = Table::new(vec![
        "stage",
        "phase",
        "rounds",
        "opinionated",
        "bias",
        "amplification",
    ]);
    let mut previous_bias: Option<f64> = None;
    for record in outcome.phase_records() {
        let bias = record.bias_after();
        let amplification = match (record.stage(), previous_bias, bias) {
            (StageId::Two, Some(prev), Some(curr)) if prev > 0.0 => {
                format!("{:.2}x", curr / prev)
            }
            _ => "-".to_string(),
        };
        table.push_row(vec![
            record.stage().to_string(),
            record.phase().to_string(),
            record.rounds().to_string(),
            format!("{:.3}", record.opinionated_fraction_after()),
            bias.map_or("-".to_string(), |b| format!("{b:+.4}")),
            amplification,
        ]);
        previous_bias = bias;
    }
    cli.emit(&table);
    Ok(())
}
