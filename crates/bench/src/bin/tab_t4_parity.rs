//! Experiment T4 — Lemma 17 (Appendix C): removing the parity assumption.
//!
//! For two opinions, `Pr[maj_ℓ = 1] = Pr[maj_{ℓ+1} = 1] ≤ Pr[maj_{ℓ+2} = 1]`
//! whenever ℓ is odd and opinion 1 is the (weak) majority of the sampling
//! distribution. This experiment evaluates all three probabilities exactly
//! (binomial sums with randomized tie-breaking) over a grid of ℓ and p₁ and
//! reports the two comparisons.

use gossip_analysis::table::Table;
use noisy_bench::Cli;
use plurality_core::bounds;

fn main() {
    let cli = Cli::from_args();
    cli.note("T4: parity of the Stage 2 sample size (Lemma 17), exact binomial evaluation\n");
    let mut table = Table::new(vec![
        "p1",
        "ell (odd)",
        "gap(ell)",
        "gap(ell+1)",
        "gap(ell+2)",
        "gap(ell)=gap(ell+1)",
        "gap(ell+2)>=gap(ell)",
    ]);
    let mut all_hold = true;
    for &p1 in &[0.5, 0.52, 0.55, 0.6, 0.7, 0.9] {
        for &ell in &[5u64, 11, 21, 51, 101] {
            // Lemma 17 is stated for Pr[maj = 1]; the gap version
            // (Pr[maj=1] − Pr[maj=2]) inherits both relations because the
            // two probabilities sum to 1.
            let g0 = bounds::exact_majority_gap_binary(p1, ell);
            let g1 = bounds::exact_majority_gap_binary(p1, ell + 1);
            let g2 = bounds::exact_majority_gap_binary(p1, ell + 2);
            let equal = (g0 - g1).abs() < 1e-9;
            let monotone = g2 >= g0 - 1e-9;
            all_hold &= equal && monotone;
            table.push_row(vec![
                format!("{p1}"),
                ell.to_string(),
                format!("{g0:.6}"),
                format!("{g1:.6}"),
                format!("{g2:.6}"),
                equal.to_string(),
                monotone.to_string(),
            ]);
        }
    }
    cli.emit(&table);
    cli.note("");
    cli.note(&format!("all Lemma 17 relations hold: {all_hold}"));
}
