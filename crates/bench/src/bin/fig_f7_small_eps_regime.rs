//! Experiment F7 — Appendix D: what happens when `ε = Θ(n^{−1/4−η})`.
//!
//! Appendix D argues that for `ε = Θ(n^{−1/4−η})` the two-stage protocol (as
//! given) cannot solve rumor spreading in `Θ(log n / ε²)` rounds: after
//! phase 0 only `O(log n / ε²)` nodes are opinionated and the surviving bias
//! `~ε²` falls far below the `Ω(√(log n / n))` requirement of Stage 2. By
//! contrast, for constant ε (or `ε = Θ(√(log n / n))`, where Stage 2 alone
//! suffices) the protocol works.
//!
//! Because simulating the literal asymptotic regime is out of reach for a
//! laptop, the experiment keeps the paper's *mechanism* observable: it
//! compares, at fixed n, a constant ε against ε = n^{−1/4−η} and reports the
//! bias at the end of Stage 1 relative to the Stage 2 requirement, plus the
//! final success rate. The qualitative claim (the small-ε runs sit below the
//! Stage 2 threshold and fail much more often) is what we reproduce.

use gossip_analysis::stats::SampleStats;
use gossip_analysis::table::Table;
use noisy_bench::{reseed, Cli};
use noisy_channel::NoiseMatrix;
use plurality_core::{ProtocolParams, StageId, TwoStageProtocol};
use pushsim::Opinion;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = Cli::from_args();
    let scale = cli.scale;
    let n = scale.pick(3_000, 20_000);
    let k = 2;
    let eta = 0.05;
    let trials = scale.pick(5, 20);

    let eps_small = (n as f64).powf(-0.25 - eta);
    let eps_const = 0.25;
    let stage2_threshold = ((n as f64).ln() / n as f64).sqrt();

    cli.note(&format!(
        "F7: the small-epsilon regime of Appendix D (n = {n}, k = {k})"
    ));
    cli.note(&format!(
        "stage-2 bias requirement Omega(sqrt(ln n / n)) = {:.4}\n",
        stage2_threshold
    ));

    let mut table = Table::new(vec![
        "regime",
        "eps",
        "stage-1 end bias",
        "bias / threshold",
        "success",
    ]);

    for (label, eps) in [("constant eps", eps_const), ("eps = n^(-1/4-eta)", eps_small)] {
        let noise = NoiseMatrix::uniform(k, eps)?;
        let params = ProtocolParams::builder(n, k).epsilon(eps).seed(0xF7).build()?;
        let mut successes = 0u64;
        let mut biases = SampleStats::new();
        for trial in 0..trials {
            let protocol = TwoStageProtocol::new(reseed(&params, 0xF7 + trial), noise.clone())?;
            let outcome = protocol.run_rumor_spreading_on(cli.backend, Opinion::new(0))?;
            if outcome.succeeded() {
                successes += 1;
            }
            if let Some(bias) = outcome
                .stage_records(StageId::One)
                .last()
                .and_then(|r| r.bias_after())
            {
                biases.push(bias);
            }
        }
        table.push_row(vec![
            label.to_string(),
            format!("{eps:.4}"),
            format!("{:.4}", biases.mean()),
            format!("{:.2}", biases.mean() / stage2_threshold),
            format!("{successes}/{trials}"),
        ]);
    }
    cli.emit(&table);
    cli.note("");
    cli.note(
        "(the constant-eps rows sit far above the threshold and succeed; the Appendix-D\n\
         regime leaves Stage 1 with a bias near or below the threshold and loses reliability)",
    );
    Ok(())
}
