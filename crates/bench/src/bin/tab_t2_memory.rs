//! Experiment T2 — the memory claim of Theorems 1 and 2: each node needs
//! only `O(log log n + log 1/ε)` bits.
//!
//! Sweeps n (at fixed ε) and ε (at fixed n), measures the per-node register
//! footprint implied by the largest counters any node actually held during a
//! successful run, and compares it with the theoretical scale. The claim
//! reproduced: measured bits grow additively with `log log n` and with
//! `log(1/ε)`, i.e. extremely slowly with n.

use gossip_analysis::table::Table;
use noisy_bench::{rumor_spreading_trials_on, Cli};
use noisy_channel::NoiseMatrix;
use plurality_core::{bounds, ProtocolParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = Cli::from_args();
    let scale = cli.scale;
    let trials = scale.pick(3, 10);

    cli.note("T2: per-node memory footprint vs the log log n + log 1/eps scale\n");

    let mut table = Table::new(vec![
        "n",
        "eps",
        "measured bits/node",
        "theory scale (bits)",
        "ratio",
        "success",
    ]);

    let eps_fixed = 0.25;
    let sizes: Vec<usize> = scale.pick(vec![1_000, 4_000, 16_000], vec![1_000, 4_000, 16_000, 64_000]);
    for &n in &sizes {
        let noise = NoiseMatrix::uniform(3, eps_fixed)?;
        let params = ProtocolParams::builder(n, 3).epsilon(eps_fixed).seed(0x72).build()?;
        let summary = rumor_spreading_trials_on(cli.backend, &params, &noise, trials);
        let scale_bits = bounds::memory_bound_bits(n, eps_fixed);
        table.push_row(vec![
            n.to_string(),
            eps_fixed.to_string(),
            format!("{:.1}", summary.memory_bits.mean()),
            format!("{scale_bits:.2}"),
            format!("{:.2}", summary.memory_bits.mean() / scale_bits),
            summary.success.to_string(),
        ]);
    }

    let n_fixed = scale.pick(2_000, 10_000);
    for &eps in &[0.1, 0.2, 0.4] {
        let noise = NoiseMatrix::uniform(3, eps)?;
        let params = ProtocolParams::builder(n_fixed, 3).epsilon(eps).seed(0x73).build()?;
        let summary = rumor_spreading_trials_on(cli.backend, &params, &noise, trials);
        let scale_bits = bounds::memory_bound_bits(n_fixed, eps);
        table.push_row(vec![
            n_fixed.to_string(),
            eps.to_string(),
            format!("{:.1}", summary.memory_bits.mean()),
            format!("{scale_bits:.2}"),
            format!("{:.2}", summary.memory_bits.mean() / scale_bits),
            summary.success.to_string(),
        ]);
    }
    cli.emit(&table);
    cli.note("");
    cli.note(
        "(the ratio stays bounded by a modest constant across two orders of magnitude in n,\n\
         which is the O(log log n + log 1/eps) claim at simulable sizes)",
    );
    Ok(())
}
