//! Experiment F4 — Proposition 1 (and Lemmas 9–11): the sample-majority gap
//! `Pr[maj_ℓ = m] − Pr[maj_ℓ = i]` is at least `√(2ℓ/π)·g(δ,ℓ)/4^{k−2}`.
//!
//! For a grid of `(k, ℓ, δ)`, draws Monte-Carlo samples of the gap when the
//! received distribution is δ-biased towards opinion 0 (the distribution a
//! Stage 2 node samples from), and compares against the analytic lower
//! bound. For `k = 2` the exact binomial value is also shown (the quantity
//! Lemma 9 bounds). The claim reproduced: the measured gap always dominates
//! the bound, and the bound's `4^{k−2}` slack grows with `k`.

use gossip_analysis::table::Table;
use noisy_bench::Cli;
use plurality_core::bounds;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A δ-biased received distribution over `k` opinions: opinion 0 gets
/// `1/k + δ(k−1)/k`, every other opinion `1/k − δ/k`, so that the gap
/// between opinion 0 and any rival is exactly δ.
fn biased_distribution(k: usize, delta: f64) -> Vec<f64> {
    let base = 1.0 / k as f64;
    let mut dist = vec![base - delta / k as f64; k];
    dist[0] = base + delta * (k as f64 - 1.0) / k as f64;
    dist
}

fn main() {
    let cli = Cli::from_args();
    let trials = cli.scale.pick(40_000, 400_000);
    let mut rng = StdRng::seed_from_u64(0xF4);

    cli.note("F4: sample-majority gap vs the Proposition 1 lower bound");
    cli.note(&format!("({} Monte-Carlo trials per cell)\n", trials));

    let mut table = Table::new(vec![
        "k",
        "ell",
        "delta",
        "measured gap",
        "Prop.1 bound",
        "exact (k=2)",
        "bound holds",
    ]);
    for &k in &[2usize, 3, 4, 5] {
        for &ell in &[9u64, 25, 51, 101] {
            for &delta in &[0.02, 0.05, 0.1, 0.2] {
                let dist = biased_distribution(k, delta);
                let measured =
                    bounds::sample_majority_gap(&dist, ell, 0, 1, trials, &mut rng);
                let bound = bounds::proposition1_lower_bound(delta, ell, k);
                let exact = if k == 2 {
                    format!("{:.4}", bounds::exact_majority_gap_binary(dist[0], ell))
                } else {
                    "-".to_string()
                };
                table.push_row(vec![
                    k.to_string(),
                    ell.to_string(),
                    format!("{delta}"),
                    format!("{measured:.4}"),
                    format!("{bound:.4}"),
                    exact,
                    // Allow the Monte-Carlo noise floor when comparing.
                    (measured >= bound - 3.0 / (trials as f64).sqrt()).to_string(),
                ]);
            }
        }
    }
    cli.emit(&table);
}
