//! Experiment T3 — Claims 2–3 and Lemma 4: Stage 1's activation growth and
//! end-of-stage bias.
//!
//! Runs Stage 1 (as part of full rumor-spreading executions) and reports,
//! phase by phase, the fraction of opinionated nodes together with the
//! multiplicative growth factor, which Claims 2–3 predict to be roughly
//! `β/ε² + 1` per middle phase (up to constants between 1/8 and 1), plus the
//! end-of-stage bias, which Lemma 4 predicts to be `Ω(√(log n / n))`.

use gossip_analysis::stats::SampleStats;
use gossip_analysis::table::Table;
use noisy_bench::{reseed, Cli};
use noisy_channel::NoiseMatrix;
use plurality_core::{ProtocolParams, StageId, TwoStageProtocol};
use pushsim::Opinion;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = Cli::from_args();
    let scale = cli.scale;
    let n = scale.pick(10_000, 50_000);
    let k = 3;
    let eps = 0.2;
    let trials = scale.pick(3, 10);

    let noise = NoiseMatrix::uniform(k, eps)?;
    let params = ProtocolParams::builder(n, k).epsilon(eps).seed(0x74).build()?;
    let growth_prediction = params.constants().beta / (eps * eps) + 1.0;
    let bias_target = ((n as f64).ln() / n as f64).sqrt();

    cli.note(&format!(
        "T3: Stage 1 activation growth and end-of-stage bias (n = {n}, k = {k}, eps = {eps})"
    ));
    cli.note(&format!(
        "predicted per-phase growth factor ~ beta/eps^2 + 1 = {growth_prediction:.0}; \
         end-of-stage bias target Omega(sqrt(ln n / n)) = {bias_target:.4}\n"
    ));

    // Collect per-phase statistics over the trials.
    let mut per_phase: Vec<(SampleStats, SampleStats)> = Vec::new();
    let mut end_bias = SampleStats::new();
    for t in 0..trials {
        let protocol = TwoStageProtocol::new(reseed(&params, 0x74 + t), noise.clone())?;
        let outcome = protocol.run_rumor_spreading_on(cli.backend, Opinion::new(0))?;
        let records: Vec<_> = outcome.stage_records(StageId::One).collect();
        if per_phase.len() < records.len() {
            per_phase.resize_with(records.len(), || (SampleStats::new(), SampleStats::new()));
        }
        let mut previous = 1.0 / n as f64;
        for (slot, record) in per_phase.iter_mut().zip(&records) {
            let fraction = record.opinionated_fraction_after();
            slot.0.push(fraction);
            slot.1.push(fraction / previous);
            previous = fraction.max(1.0 / n as f64);
        }
        if let Some(bias) = records.last().and_then(|r| r.bias_after()) {
            end_bias.push(bias);
        }
    }

    let mut table = Table::new(vec![
        "phase",
        "opinionated fraction",
        "growth factor",
        "predicted growth",
    ]);
    for (phase, (fraction, growth)) in per_phase.iter().enumerate() {
        let predicted = if phase == 0 || phase + 1 == per_phase.len() {
            "-".to_string()
        } else {
            format!("{growth_prediction:.0}")
        };
        table.push_row(vec![
            phase.to_string(),
            format!("{:.4}", fraction.mean()),
            format!("{:.1}", growth.mean()),
            predicted,
        ]);
    }
    cli.emit(&table);
    cli.note("");
    cli.note(&format!(
        "end-of-stage-1 bias: {:.4} (target >= {:.4}, ratio {:.2})",
        end_bias.mean(),
        bias_target,
        end_bias.mean() / bias_target
    ));
    Ok(())
}
