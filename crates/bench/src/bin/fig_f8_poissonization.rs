//! Experiment F8 — Claim 1 and Lemma 3: the balls-into-bins process B is
//! distributionally equivalent to the real push process O at phase
//! granularity, and the Poissonized process P approximates both.
//!
//! Runs one phase of pushing from a fixed opinion configuration under each
//! delivery semantics (many repetitions), and compares
//!
//! * the per-opinion totals received (conservation / first moments),
//! * the distribution of the per-node received-message count (mean,
//!   variance, fraction of nodes receiving at least one message), and
//! * the end-of-phase opinion distribution after applying the Stage 1
//!   adoption rule.
//!
//! O and B should agree within Monte-Carlo noise on every statistic; P
//! agrees on everything except the total message count, which is itself a
//! Poisson variable (that is exactly the extra slack Lemma 3 pays for).

use gossip_analysis::stats::SampleStats;
use gossip_analysis::table::Table;
use noisy_bench::Cli;
use noisy_channel::NoiseMatrix;
use pushsim::{DeliverySemantics, Network, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // This experiment compares the three delivery semantics *within* the
    // agent-level backend, so `--backend` does not apply here.
    let cli = Cli::from_args();
    let scale = cli.scale;
    let n = scale.pick(2_000, 10_000);
    let k = 3;
    let eps = 0.2;
    let rounds_per_phase = 10u64;
    let repetitions = scale.pick(20, 100);
    let counts = [n * 5 / 10, n * 3 / 10, n * 2 / 10];

    cli.note(&format!(
        "F8: delivery-semantics comparison (n = {n}, k = {k}, {rounds_per_phase} rounds/phase, {repetitions} repetitions)\n"
    ));

    let mut table = Table::new(vec![
        "process",
        "total received",
        "mean recv/node",
        "var recv/node",
        "frac >=1 msg",
        "adopters of opinion 0",
    ]);

    for semantics in DeliverySemantics::ALL {
        let mut totals = SampleStats::new();
        let mut mean_recv = SampleStats::new();
        let mut var_recv = SampleStats::new();
        let mut frac_any = SampleStats::new();
        let mut adopters0 = SampleStats::new();

        for rep in 0..repetitions {
            let noise = NoiseMatrix::uniform(k, eps)?;
            let config = SimConfig::builder(n, k)
                .seed(0xF8 + rep)
                .delivery(semantics)
                .build()?;
            let mut net = Network::new(config, noise)?;
            net.seed_counts(&counts)?;
            net.begin_phase();
            for _ in 0..rounds_per_phase {
                net.push_round(|_, s| s.opinion());
            }
            let inboxes = net.end_phase();

            totals.push(inboxes.total_messages() as f64);
            let per_node: SampleStats = (0..n)
                .map(|u| f64::from(inboxes.received_total(u)))
                .collect();
            mean_recv.push(per_node.mean());
            var_recv.push(per_node.population_variance());
            let any = (0..n).filter(|&u| inboxes.has_received(u)).count();
            frac_any.push(any as f64 / n as f64);

            // Stage-1 adoption rule applied to undecided nodes — here every
            // node is opinionated, so instead count how many nodes *would*
            // adopt opinion 0 if they re-sampled one received message.
            let mut rng = StdRng::seed_from_u64(0x5AFE + rep);
            let adopted0 = (0..n)
                .filter(|&u| {
                    inboxes
                        .sample_one(u, &mut rng)
                        .map(|o| o.index() == 0)
                        .unwrap_or(false)
                })
                .count();
            adopters0.push(adopted0 as f64 / n as f64);
        }

        table.push_row(vec![
            format!("{} ({semantics:?})", semantics.label()),
            format!("{:.0} ± {:.0}", totals.mean(), totals.ci95_half_width()),
            format!("{:.3}", mean_recv.mean()),
            format!("{:.3}", var_recv.mean()),
            format!("{:.4}", frac_any.mean()),
            format!("{:.4}", adopters0.mean()),
        ]);
    }
    cli.emit(&table);
    cli.note("");
    cli.note(
        "(O and B agree on every column; P matches all per-node statistics but its total\n\
         message count fluctuates — the Poisson slack Lemma 3 accounts for)",
    );
    Ok(())
}
