//! Experiment F6 — Section 4: the (ε, δ)-majority-preserving
//! characterization of noise matrices.
//!
//! For each matrix family discussed in the paper, the exact LP of Section 4
//! computes the worst-case margin over δ-biased distributions for a grid of
//! δ; the same matrices are then used end-to-end to check that the protocol
//! succeeds exactly when the LP says the plurality survives the channel
//! (uniform family: always; diagonally-dominant counterexample with small ε:
//! never; Eq. (17) band family: iff Eq. (18)'s condition is generous
//! enough).

use gossip_analysis::table::Table;
use noisy_bench::{biased_counts, plurality_trials_on, Cli};
use noisy_channel::{families, NoiseMatrix};
use plurality_core::ProtocolParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = Cli::from_args();
    let scale = cli.scale;
    let n = scale.pick(1_500, 10_000);
    let trials = scale.pick(5, 20);
    let initial_bias = 0.1;

    let matrices: Vec<(&str, NoiseMatrix)> = vec![
        ("uniform eps=0.2 (k=3)", NoiseMatrix::uniform(3, 0.2)?),
        ("uniform eps=0.1 (k=3)", NoiseMatrix::uniform(3, 0.1)?),
        (
            "diag-dominant counterexample eps=0.05",
            families::diagonally_dominant_counterexample(0.05)?,
        ),
        (
            "diag-dominant counterexample eps=0.45",
            families::diagonally_dominant_counterexample(0.45)?,
        ),
        ("cyclic lambda=0.05 (k=3)", families::cyclic(3, 0.05)?),
        ("reset->1 lambda=0.4 (k=3)", families::reset_to_opinion(3, 0.4, 1)?),
        (
            "band p=0.5 q=[0.24,0.26] (k=3, Eq.17)",
            families::near_uniform_band(3, 0.5, 0.24, 0.26)?,
        ),
    ];

    cli.note("F6: (eps, delta)-majority-preservation vs end-to-end protocol success");
    cli.note(&format!(
        "(plurality consensus towards opinion 0, n = {n}, initial bias {initial_bias}, {trials} trials)\n"
    ));

    let mut table = Table::new(vec![
        "matrix",
        "LP margin (delta=0.1)",
        "max eps",
        "m.p.?",
        "protocol success",
    ]);

    for (name, matrix) in &matrices {
        let report = matrix.majority_preservation(0, initial_bias)?;
        // End-to-end: provision the schedule for half the matrix's own
        // margin (a practitioner would leave headroom; the clamp keeps the
        // non-m.p. rows, whose margin is 0, on a finite schedule).
        let protocol_eps = (0.5 * report.max_epsilon()).clamp(0.05, 0.4);
        let params = ProtocolParams::builder(n, 3)
            .epsilon(protocol_eps)
            .seed(0xF6)
            .build()?;
        let counts = biased_counts(n, 3, initial_bias);
        let summary = plurality_trials_on(cli.backend, &params, matrix, &counts, trials);
        table.push_row(vec![
            name.to_string(),
            format!("{:+.4}", report.worst_margin()),
            format!("{:.3}", report.max_epsilon()),
            report.preserves_majority().to_string(),
            summary.success.to_string(),
        ]);
    }
    cli.emit(&table);
    cli.note("");
    cli.note(
        "paper prediction: rows with 'm.p.? = true' succeed with rate ~1, rows with\n\
         'm.p.? = false' fail (the plurality is destroyed by the channel itself)",
    );
    Ok(())
}
