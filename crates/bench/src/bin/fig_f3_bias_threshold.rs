//! Experiment F3 — Theorem 2: plurality consensus needs an initial bias of
//! order `√(log n / |S|)` on an opinionated set of size
//! `|S| = Ω(log n / ε²)`.
//!
//! Sweeps the initial bias of the opinionated set for two opinion counts and
//! reports the success rate of the full protocol. The paper predicts a
//! threshold phenomenon: once the bias comfortably exceeds `√(ln n / |S|)`
//! the success rate jumps to ≈ 1, while at much smaller biases the protocol
//! can converge to the wrong opinion.

use gossip_analysis::table::Table;
use noisy_bench::{biased_counts, plurality_trials_on, Cli};
use noisy_channel::NoiseMatrix;
use plurality_core::ProtocolParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = Cli::from_args();
    let scale = cli.scale;
    let n = scale.pick(2_000, 20_000);
    let epsilon = 0.25;
    let trials = scale.pick(6, 30);
    // The opinionated set: everyone starts with an opinion (|S| = n), so the
    // threshold scale is sqrt(ln n / n).
    let threshold = ((n as f64).ln() / n as f64).sqrt();
    let bias_multipliers = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0];

    cli.note(&format!(
        "F3: success rate vs initial bias (plurality consensus, n = {n}, eps = {epsilon})"
    ));
    cli.note(&format!("threshold scale sqrt(ln n / n) = {threshold:.4}\n"));

    let mut table = Table::new(vec!["k", "bias / threshold", "initial bias", "success"]);
    for &k in &[2usize, 4] {
        let noise = NoiseMatrix::uniform(k, epsilon)?;
        for &mult in &bias_multipliers {
            let bias = (mult * threshold).min(0.9);
            let counts = biased_counts(n, k, bias);
            let params = ProtocolParams::builder(n, k)
                .epsilon(epsilon)
                .seed(0xF3 + k as u64)
                .build()?;
            let summary = plurality_trials_on(cli.backend, &params, &noise, &counts, trials);
            table.push_row(vec![
                k.to_string(),
                format!("{mult}"),
                format!("{bias:.4}"),
                summary.success.to_string(),
            ]);
        }
    }
    cli.emit(&table);
    cli.note("");
    cli.note(
        "(at bias 0 the correct opinion is not defined any better than its rivals, so the\n\
         success rate reflects a fair coin among the tied opinions; well above the threshold\n\
         the success rate approaches 1, matching Theorem 2)",
    );
    Ok(())
}
