//! Experiment T1 — headline comparison: the two-stage protocol vs the
//! baseline dynamics under identical noise.
//!
//! All algorithms run on the same instance (k = 3 opinions, 10% initial
//! bias, uniform ε-noise) with the same round budget (the protocol's own
//! schedule length). Reported per algorithm: rounds used, whether *exact*
//! consensus was reached, whether the plurality opinion won, and the final
//! share of the plurality opinion.
//!
//! The reproduction of the paper's point: only the two-stage protocol
//! reliably reaches exact consensus on the correct opinion under noise —
//! the baselines either stall at a noise-dependent share (no absorbing
//! state) or lose the plurality altogether.

use gossip_analysis::ci::WilsonInterval;
use gossip_analysis::stats::SampleStats;
use gossip_analysis::table::Table;
use noisy_bench::{biased_counts, reseed, Cli};
use noisy_channel::NoiseMatrix;
use opinion_dynamics::{Dynamics, HMajority, MedianRule, ThreeMajority, UndecidedState, Voter};
use plurality_core::{ProtocolParams, TwoStageProtocol};
use pushsim::{Network, Opinion, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = Cli::from_args();
    let scale = cli.scale;
    let n = scale.pick(2_000, 10_000);
    let k = 3;
    let eps = 0.25;
    let bias = 0.1;
    let trials = scale.pick(5, 20);
    let counts = biased_counts(n, k, bias);
    let noise = NoiseMatrix::uniform(k, eps)?;
    let params = ProtocolParams::builder(n, k).epsilon(eps).seed(0x71).build()?;
    let budget = params.schedule().total_rounds();

    cli.note(&format!(
        "T1: two-stage protocol vs baseline dynamics (n = {n}, k = {k}, eps = {eps}, bias = {bias})"
    ));
    cli.note(&format!(
        "round budget per algorithm: {budget} (the protocol's schedule)\n"
    ));

    let mut table = Table::new(vec![
        "algorithm",
        "exact consensus",
        "correct plurality",
        "mean plurality share",
        "mean rounds",
    ]);

    // The two-stage protocol.
    {
        let mut consensus = 0u64;
        let mut correct = 0u64;
        let mut share = SampleStats::new();
        let mut rounds = SampleStats::new();
        for t in 0..trials {
            let protocol = TwoStageProtocol::new(reseed(&params, 0x71 + t), noise.clone())?;
            let outcome = protocol.run_plurality_consensus_on(cli.backend, &counts)?;
            if outcome.consensus_reached() {
                consensus += 1;
            }
            if outcome.winning_opinion() == Some(Opinion::new(0)) {
                correct += 1;
            }
            let dist = outcome.final_distribution();
            share.push(dist.counts()[0] as f64 / dist.num_nodes() as f64);
            rounds.push(outcome.rounds() as f64);
        }
        table.push_row(vec![
            "two-stage protocol".to_string(),
            WilsonInterval::from_trials(consensus, trials).to_string(),
            WilsonInterval::from_trials(correct, trials).to_string(),
            format!("{:.3}", share.mean()),
            format!("{:.0}", rounds.mean()),
        ]);
    }

    // The baselines.
    let make_baselines = || -> Vec<Box<dyn Dynamics>> {
        vec![
            Box::new(Voter::new()),
            Box::new(ThreeMajority::new()),
            Box::new(HMajority::new(15)),
            Box::new(UndecidedState::new()),
            Box::new(MedianRule::new()),
        ]
    };
    for (b, _) in make_baselines().iter().enumerate() {
        let mut consensus = 0u64;
        let mut correct = 0u64;
        let mut share = SampleStats::new();
        let mut rounds = SampleStats::new();
        let mut name = "";
        for t in 0..trials {
            let mut dynamics = make_baselines().remove(b);
            name = dynamics.name();
            let config = SimConfig::builder(n, k).seed(0x72 + t).build()?;
            let mut net = Network::new(config, noise.clone())?;
            net.seed_counts(&counts)?;
            let mut rng = StdRng::seed_from_u64(0x73 + t);
            let outcome = dynamics.run(&mut net, &mut rng, budget);
            if outcome.converged() {
                consensus += 1;
            }
            if outcome.winner() == Some(Opinion::new(0)) {
                correct += 1;
            }
            let dist = outcome.final_distribution();
            share.push(dist.counts()[0] as f64 / dist.num_nodes() as f64);
            rounds.push(outcome.rounds() as f64);
        }
        table.push_row(vec![
            name.to_string(),
            WilsonInterval::from_trials(consensus, trials).to_string(),
            WilsonInterval::from_trials(correct, trials).to_string(),
            format!("{:.3}", share.mean()),
            format!("{:.0}", rounds.mean()),
        ]);
    }
    cli.emit(&table);
    Ok(())
}
