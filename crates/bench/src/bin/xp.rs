//! `xp` — the single experiment driver.
//!
//! ```text
//! xp list                         # all registered experiments
//! xp run f2 [--full --json --backend agent|counting|blockcounting|auto --trials N --seed S]
//! xp run --spec path.spec [...]   # run a scenario spec file
//! xp show f2 [--full]             # print a spec-backed experiment's spec text
//! xp campaign --spec c.spec [--seeds N --tolerance T --slack S]
//! xp campaign --replay c.spec <seed> [--seeds N]
//! xp help
//! ```
//!
//! Registered experiments live in [`noisy_bench::registry`]; spec files are
//! parsed by [`noisy_bench::spec::ScenarioSpec::from_text`]; campaigns run
//! through [`noisy_bench::campaign`].
//!
//! Exit codes: 0 on success (campaigns: every oracle passed), 1 on run
//! failures (campaigns: an oracle violation, with a ready-to-paste replay
//! command), 2 on usage errors (unknown command/experiment, unreadable
//! spec file, malformed flags).

use gossip_analysis::table::Table;
use noisy_bench::campaign::{self, CampaignOptions};
use noisy_bench::registry;
use noisy_bench::runner::Runner;
use noisy_bench::spec::ScenarioSpec;
use noisy_bench::Cli;
use std::process::ExitCode;

const USAGE_HEAD: &str = "\
usage:
  xp list                      list the registered experiments
  xp run <name> [options]      run a registered experiment
  xp run --spec <path> [opts]  run a scenario spec file
  xp show <name> [--full]      print a spec-backed experiment's spec text
  xp campaign <name|--spec <path>> [--seeds N] [--tolerance T] [--slack S]
                               fault-injection campaign: run every sweep cell
                               over N seeds under the invariant oracles;
                               exit 1 + replay command on any violation
  xp campaign --replay <name|path> <seed> [--seeds N]
                               re-run one campaign seed with a trajectory dump
  xp help                      print this message
";

fn usage() -> String {
    format!("{USAGE_HEAD}\n{}", Cli::USAGE)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    match command.as_str() {
        "list" => cmd_list(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "show" => cmd_show(&args[1..]),
        "campaign" => cmd_campaign(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown command {other:?}\n\n{}", usage());
            ExitCode::from(2)
        }
    }
}

fn cmd_list(rest: &[String]) -> ExitCode {
    if !rest.is_empty() {
        eprintln!("error: `xp list` takes no arguments\n\n{}", usage());
        return ExitCode::from(2);
    }
    let mut table = Table::new(vec!["name", "kind", "title"]);
    for experiment in registry::all() {
        table.push_row(vec![
            experiment.name.to_string(),
            if experiment.is_spec() { "spec" } else { "composite" }.to_string(),
            experiment.title.to_string(),
        ]);
    }
    print!("{table}");
    ExitCode::SUCCESS
}

/// The experiment name, `--spec` path and remaining shared CLI flags of an
/// `xp run` / `xp show` invocation.
type RunArgs = (Option<String>, Option<String>, Vec<String>);

/// Splits `xp run` arguments into the experiment name / `--spec` path and
/// the shared CLI flags. Value-taking CLI flags (`--backend`, `--trials`,
/// `--seed`) keep their space-separated value, so flags may appear before
/// or after the experiment name.
fn split_run_args(rest: &[String]) -> Result<RunArgs, String> {
    let mut name = None;
    let mut spec_path = None;
    let mut cli_args = Vec::new();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        if arg == "--spec" {
            let value = iter.next().ok_or("--spec requires a file path")?;
            spec_path = Some(value.clone());
        } else if let Some(value) = arg.strip_prefix("--spec=") {
            spec_path = Some(value.to_string());
        } else if matches!(arg.as_str(), "--backend" | "--trials" | "--seed") {
            cli_args.push(arg.clone());
            // Keep the flag's value out of the name slot; a missing value
            // is reported by the shared CLI parser.
            if let Some(value) = iter.next() {
                cli_args.push(value.clone());
            }
        } else if !arg.starts_with('-') && name.is_none() {
            name = Some(arg.clone());
        } else {
            cli_args.push(arg.clone());
        }
    }
    Ok((name, spec_path, cli_args))
}

fn cmd_run(rest: &[String]) -> ExitCode {
    let (name, spec_path, cli_args) = match split_run_args(rest) {
        Ok(parts) => parts,
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if cli_args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let cli = match Cli::try_parse_from(cli_args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match (name, spec_path) {
        (Some(name), None) => {
            let Some(experiment) = registry::find(&name) else {
                eprintln!(
                    "error: unknown experiment {name:?} (registered: {})",
                    known_names()
                );
                return ExitCode::from(2);
            };
            match registry::run(experiment, &cli) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: experiment {name} failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        (None, Some(path)) => run_spec_file(&path, &cli),
        (Some(_), Some(_)) => {
            eprintln!("error: give an experiment name or --spec, not both\n\n{}", usage());
            ExitCode::from(2)
        }
        (None, None) => {
            eprintln!("error: `xp run` needs an experiment name or --spec <path>\n\n{}", usage());
            ExitCode::from(2)
        }
    }
}

fn run_spec_file(path: &str, cli: &Cli) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            // A spec file that cannot be loaded is a usage error (exit 2,
            // like an unknown experiment name), reported with the path the
            // lookup actually used so relative-path typos are obvious.
            eprintln!("error: cannot read spec file {path:?}: {e}");
            return ExitCode::from(2);
        }
    };
    // Parse errors keep their 1-based line numbers, prefixed with the path.
    let mut spec = match ScenarioSpec::from_text(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    registry::apply_cli(&mut spec, cli);
    cli.note(&format!("running spec {path} ({} scenario)\n", spec.kind.name()));
    let runner = match Runner::new(spec) {
        Ok(runner) => runner,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cli.stream {
        if let Err(e) = runner.run_streamed(&mut std::io::stdout().lock()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        match runner.run() {
            Ok(report) => cli.emit(&report.to_table()),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_show(rest: &[String]) -> ExitCode {
    let (name, spec_path, cli_args) = match split_run_args(rest) {
        Ok(parts) => parts,
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let cli = match Cli::try_parse_from(cli_args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let (Some(name), None) = (name, spec_path) else {
        eprintln!("error: `xp show` takes an experiment name\n\n{}", usage());
        return ExitCode::from(2);
    };
    let Some(experiment) = registry::find(&name) else {
        eprintln!(
            "error: unknown experiment {name:?} (registered: {})",
            known_names()
        );
        return ExitCode::from(2);
    };
    match experiment.spec(cli.scale) {
        Some(mut spec) => {
            registry::apply_cli(&mut spec, &cli);
            println!("# {}: {}", experiment.name, experiment.title);
            print!("{}", spec.to_text());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "error: {name} is a composite experiment (several spec runs merged into one \
                 table); it has no single spec to show"
            );
            ExitCode::FAILURE
        }
    }
}

/// Campaign-specific arguments: the spec source (registered name or file
/// path), the optional replay seed, the engine knobs, and the leftover
/// shared CLI flags.
struct CampaignArgs {
    source: Option<String>,
    replay: bool,
    replay_seed: Option<String>,
    seeds: Option<u64>,
    tolerance: Option<f64>,
    slack: Option<f64>,
    cli_args: Vec<String>,
}

fn split_campaign_args(rest: &[String]) -> Result<CampaignArgs, String> {
    let mut parsed = CampaignArgs {
        source: None,
        replay: false,
        replay_seed: None,
        seeds: None,
        tolerance: None,
        slack: None,
        cli_args: Vec::new(),
    };
    let mut iter = rest.iter();
    let value = |iter: &mut std::slice::Iter<'_, String>, flag: &str| {
        iter.next().cloned().ok_or(format!("{flag} requires a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--replay" => parsed.replay = true,
            "--spec" => parsed.source = Some(value(&mut iter, "--spec")?),
            "--seeds" => {
                let v = value(&mut iter, "--seeds")?;
                let seeds: u64 =
                    v.parse().map_err(|_| format!("invalid --seeds value {v:?}"))?;
                if seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
                parsed.seeds = Some(seeds);
            }
            "--tolerance" => {
                let v = value(&mut iter, "--tolerance")?;
                parsed.tolerance =
                    Some(v.parse().map_err(|_| format!("invalid --tolerance value {v:?}"))?);
            }
            "--slack" => {
                let v = value(&mut iter, "--slack")?;
                parsed.slack =
                    Some(v.parse().map_err(|_| format!("invalid --slack value {v:?}"))?);
            }
            "--backend" | "--trials" | "--seed" => {
                parsed.cli_args.push(arg.clone());
                if let Some(v) = iter.next() {
                    parsed.cli_args.push(v.clone());
                }
            }
            other if !other.starts_with('-') => {
                if parsed.source.is_none() {
                    parsed.source = Some(arg.clone());
                } else if parsed.replay && parsed.replay_seed.is_none() {
                    parsed.replay_seed = Some(arg.clone());
                } else {
                    return Err(format!("unexpected argument {other:?}"));
                }
            }
            _ => {
                if let Some(v) = arg.strip_prefix("--spec=") {
                    parsed.source = Some(v.to_string());
                } else {
                    parsed.cli_args.push(arg.clone());
                }
            }
        }
    }
    Ok(parsed)
}

fn cmd_campaign(rest: &[String]) -> ExitCode {
    let args = match split_campaign_args(rest) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if args.cli_args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let cli = match Cli::try_parse_from(args.cli_args.clone()) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let Some(source) = args.source.clone() else {
        eprintln!(
            "error: `xp campaign` needs an experiment name or --spec <path>\n\n{}",
            usage()
        );
        return ExitCode::from(2);
    };

    // Resolve the spec: registered experiment names first, file paths
    // otherwise. An unreadable path is a usage error (exit 2); a file that
    // loads but does not parse is a run failure (exit 1).
    let mut spec = if let Some(experiment) = registry::find(&source) {
        match experiment.spec(cli.scale) {
            Some(spec) => spec,
            None => {
                eprintln!("error: {source} is a composite experiment; campaigns need one spec");
                return ExitCode::from(2);
            }
        }
    } else {
        let text = match std::fs::read_to_string(&source) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read spec file {source:?}: {e}");
                return ExitCode::from(2);
            }
        };
        match ScenarioSpec::from_text(&text) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: {source}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    registry::apply_cli(&mut spec, &cli);

    let mut options = CampaignOptions::default();
    if let Some(seeds) = args.seeds {
        options.seeds = seeds;
    }
    if let Some(tolerance) = args.tolerance {
        options.tolerance = tolerance;
    }
    if let Some(slack) = args.slack {
        options.slack = slack;
    }

    if args.replay {
        let Some(seed_text) = args.replay_seed else {
            eprintln!("error: --replay needs the failing seed to re-run\n\n{}", usage());
            return ExitCode::from(2);
        };
        let seed = match parse_seed(&seed_text) {
            Ok(seed) => seed,
            Err(message) => {
                eprintln!("error: {message}\n\n{}", usage());
                return ExitCode::from(2);
            }
        };
        return replay_campaign(&spec, &options, seed, &cli);
    }

    cli.note(&format!(
        "campaign: {} scenario, {} seeds per cell (oracles: count conservation, consensus \
         correctness, bias monotonicity @ {}, round envelope @ {}x)\n",
        spec.kind.name(),
        options.seeds,
        options.tolerance,
        options.slack,
    ));
    match campaign::run_campaign(&spec, &options) {
        Ok(report) => {
            cli.emit(&report.to_table());
            if report.passed() {
                cli.note(&format!(
                    "\ncampaign PASS: {} cells x {} seeds, no oracle violations",
                    report.cells().len(),
                    options.seeds,
                ));
                ExitCode::SUCCESS
            } else {
                // Failure details go to stderr so `--json` stdout stays
                // machine-parseable.
                for line in report.failure_lines(&source) {
                    eprintln!("{line}");
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {source}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn replay_campaign(
    spec: &ScenarioSpec,
    options: &CampaignOptions,
    seed: u64,
    cli: &Cli,
) -> ExitCode {
    match campaign::replay(spec, options, seed) {
        Ok(outcome) => {
            cli.note(&format!(
                "replaying seed {} (cell {}, seed index {})\n",
                outcome.seed, outcome.point.index, outcome.seed_index,
            ));
            let mut table = Table::new(
                gossip_analysis::observe::TRAJECTORY_HEADERS
                    .iter()
                    .map(|h| h.to_string())
                    .collect::<Vec<_>>(),
            );
            for row in outcome.trajectory.rows() {
                table.push_row(row);
            }
            cli.emit(&table);
            if outcome.violations.is_empty() {
                cli.note("\nreplay PASS: no oracle violations reproduced");
                ExitCode::SUCCESS
            } else {
                for violation in &outcome.violations {
                    eprintln!("{violation}");
                }
                ExitCode::FAILURE
            }
        }
        // A seed that is not part of the campaign is a usage error, like
        // an unknown experiment name.
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Parses a replay seed (decimal, or hexadecimal with an `0x` prefix).
fn parse_seed(text: &str) -> Result<u64, String> {
    let parsed = match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => text.parse(),
    };
    parsed.map_err(|_| format!("invalid replay seed {text:?}"))
}

fn known_names() -> String {
    registry::all()
        .iter()
        .map(|e| e.name)
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn run_args_split_name_spec_and_flags_in_any_order() {
        let (name, spec, cli) = split_run_args(&to_args(&["f2", "--json", "--trials", "3"])).unwrap();
        assert_eq!(name.as_deref(), Some("f2"));
        assert_eq!(spec, None);
        assert_eq!(cli, to_args(&["--json", "--trials", "3"]));

        // Flags before the name: the flag value must not become the name.
        let (name, _, cli) = split_run_args(&to_args(&["--backend", "counting", "f2"])).unwrap();
        assert_eq!(name.as_deref(), Some("f2"));
        assert_eq!(cli, to_args(&["--backend", "counting"]));

        // --spec with trailing space-separated flag values.
        let (name, spec, cli) =
            split_run_args(&to_args(&["--spec", "a.spec", "--trials", "1", "--seed", "9"]))
                .unwrap();
        assert_eq!(name, None);
        assert_eq!(spec.as_deref(), Some("a.spec"));
        assert_eq!(cli, to_args(&["--trials", "1", "--seed", "9"]));

        let (_, spec, _) = split_run_args(&to_args(&["--spec=b.spec"])).unwrap();
        assert_eq!(spec.as_deref(), Some("b.spec"));

        assert!(split_run_args(&to_args(&["--spec"])).is_err());
    }

    #[test]
    fn campaign_args_split_source_seed_and_knobs() {
        let args =
            split_campaign_args(&to_args(&["--spec", "c.spec", "--seeds", "64", "--json"]))
                .unwrap();
        assert_eq!(args.source.as_deref(), Some("c.spec"));
        assert!(!args.replay);
        assert_eq!(args.seeds, Some(64));
        assert_eq!(args.cli_args, to_args(&["--json"]));

        // The pasted replay command: `--replay <source> <seed> --seeds N`.
        let args = split_campaign_args(&to_args(&[
            "--replay", "c.spec", "1234", "--seeds", "100",
        ]))
        .unwrap();
        assert!(args.replay);
        assert_eq!(args.source.as_deref(), Some("c.spec"));
        assert_eq!(args.replay_seed.as_deref(), Some("1234"));
        assert_eq!(args.seeds, Some(100));

        assert!(split_campaign_args(&to_args(&["--seeds", "0"])).is_err());
        assert!(split_campaign_args(&to_args(&["--seeds"])).is_err());
        assert!(split_campaign_args(&to_args(&["a.spec", "extra"])).is_err());
    }

    #[test]
    fn replay_seeds_parse_in_decimal_and_hex() {
        assert_eq!(parse_seed("1234").unwrap(), 1234);
        assert_eq!(parse_seed("0xBEEF").unwrap(), 0xBEEF);
        assert!(parse_seed("nope").is_err());
    }
}
