//! `xp` — the single experiment driver.
//!
//! ```text
//! xp list [--json]                # all registered experiments
//! xp run f2 [--full --json --backend agent|counting|blockcounting|auto --trials N --seed S]
//! xp run --spec path.spec [...]   # run a scenario spec file
//! xp show f2 [--full]             # print a spec-backed experiment's spec text
//! xp campaign --spec c.spec [--seeds N --tolerance T --slack S]
//! xp campaign --replay c.spec <seed> [--seeds N]
//! xp serve [--addr H:P --workers N --queue-depth D --cache-bytes B --test-shutdown]
//! xp load [--addr H:P --clients N --requests R --spec path|name --json]
//! xp help
//! ```
//!
//! Registered experiments live in [`noisy_bench::registry`]; spec files are
//! parsed by [`noisy_bench::spec::ScenarioSpec::from_text`]; campaigns run
//! through [`noisy_bench::campaign`]; the HTTP scenario service is
//! [`noisy_serve`] wired to specs by [`noisy_bench::service::SpecService`].
//!
//! Exit codes: 0 on success (campaigns: every oracle passed; load: every
//! response verified), 1 on run failures (campaigns: an oracle violation,
//! with a ready-to-paste replay command; load: dropped or corrupted
//! responses), 2 on usage errors (unknown command/experiment, unreadable
//! spec file, malformed flags).

use gossip_analysis::table::Table;
use noisy_bench::campaign::{self, CampaignOptions};
use noisy_bench::registry;
use noisy_bench::runner::Runner;
use noisy_bench::service::SpecService;
use noisy_bench::spec::ScenarioSpec;
use noisy_bench::{Cli, Scale};
use noisy_serve::{loadtest, signal, Server, ServerConfig};
use std::io::Write as _;
use std::process::ExitCode;

const USAGE_HEAD: &str = "\
usage:
  xp list [--json]             list the registered experiments
  xp run <name> [options]      run a registered experiment
  xp run --spec <path> [opts]  run a scenario spec file
  xp show <name> [--full]      print a spec-backed experiment's spec text
  xp campaign <name|--spec <path>> [--seeds N] [--tolerance T] [--slack S]
                               fault-injection campaign: run every sweep cell
                               over N seeds under the invariant oracles;
                               exit 1 + replay command on any violation
  xp campaign --replay <name|path> <seed> [--seeds N]
                               re-run one campaign seed with a trajectory dump
  xp serve [--addr <host:port>] [--workers N] [--queue-depth D]
           [--cache-bytes B[k|m|g]] [--test-shutdown]
                               serve scenario specs over HTTP: POST spec text
                               to /v1/runs, stream results from
                               /v1/runs/{id}/stream (see README)
  xp load [--addr <host:port>] [--clients N] [--requests R]
          [--spec <path>|<name>] [--json] [--bench-append <file>]
                               drive N concurrent clients against the service
                               (self-hosted on an ephemeral port unless
                               --addr is given) and verify every response
  xp help                      print this message
";

fn usage() -> String {
    format!("{USAGE_HEAD}\n{}", Cli::USAGE)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    match command.as_str() {
        "list" => cmd_list(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "show" => cmd_show(&args[1..]),
        "campaign" => cmd_campaign(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "load" => cmd_load(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown command {other:?}\n\n{}", usage());
            ExitCode::from(2)
        }
    }
}

fn cmd_list(rest: &[String]) -> ExitCode {
    let mut json = false;
    for arg in rest {
        match arg.as_str() {
            "--json" => json = true,
            other => {
                eprintln!("error: unknown `xp list` argument {other:?}\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let mut table = Table::new(vec!["name", "kind", "scenario", "title"]);
    for experiment in registry::all() {
        let scenario = experiment
            .spec(Scale::Quick)
            .map(|spec| spec.kind.name().to_string())
            .unwrap_or_else(|| "-".to_string());
        table.push_row(vec![
            experiment.name.to_string(),
            if experiment.is_spec() { "spec" } else { "composite" }.to_string(),
            scenario,
            experiment.title.to_string(),
        ]);
    }
    if json {
        print!("{}", table.to_json_lines());
    } else {
        print!("{table}");
    }
    ExitCode::SUCCESS
}

/// The experiment name, `--spec` path and remaining shared CLI flags of an
/// `xp run` / `xp show` invocation.
type RunArgs = (Option<String>, Option<String>, Vec<String>);

/// Splits `xp run` arguments into the experiment name / `--spec` path and
/// the shared CLI flags. Value-taking CLI flags (`--backend`, `--trials`,
/// `--seed`) keep their space-separated value, so flags may appear before
/// or after the experiment name.
fn split_run_args(rest: &[String]) -> Result<RunArgs, String> {
    let mut name = None;
    let mut spec_path = None;
    let mut cli_args = Vec::new();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        if arg == "--spec" {
            let value = iter.next().ok_or("--spec requires a file path")?;
            spec_path = Some(value.clone());
        } else if let Some(value) = arg.strip_prefix("--spec=") {
            spec_path = Some(value.to_string());
        } else if matches!(arg.as_str(), "--backend" | "--trials" | "--seed") {
            cli_args.push(arg.clone());
            // Keep the flag's value out of the name slot; a missing value
            // is reported by the shared CLI parser.
            if let Some(value) = iter.next() {
                cli_args.push(value.clone());
            }
        } else if !arg.starts_with('-') && name.is_none() {
            name = Some(arg.clone());
        } else {
            cli_args.push(arg.clone());
        }
    }
    Ok((name, spec_path, cli_args))
}

fn cmd_run(rest: &[String]) -> ExitCode {
    let (name, spec_path, cli_args) = match split_run_args(rest) {
        Ok(parts) => parts,
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if cli_args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let cli = match Cli::try_parse_from(cli_args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match (name, spec_path) {
        (Some(name), None) => {
            let Some(experiment) = registry::find(&name) else {
                eprintln!(
                    "error: unknown experiment {name:?} (registered: {})",
                    known_names()
                );
                return ExitCode::from(2);
            };
            match registry::run(experiment, &cli) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: experiment {name} failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        (None, Some(path)) => run_spec_file(&path, &cli),
        (Some(_), Some(_)) => {
            eprintln!("error: give an experiment name or --spec, not both\n\n{}", usage());
            ExitCode::from(2)
        }
        (None, None) => {
            eprintln!("error: `xp run` needs an experiment name or --spec <path>\n\n{}", usage());
            ExitCode::from(2)
        }
    }
}

fn run_spec_file(path: &str, cli: &Cli) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            // A spec file that cannot be loaded is a usage error (exit 2,
            // like an unknown experiment name), reported with the path the
            // lookup actually used so relative-path typos are obvious.
            eprintln!("error: cannot read spec file {path:?}: {e}");
            return ExitCode::from(2);
        }
    };
    // Parse errors keep their 1-based line numbers, prefixed with the path.
    let mut spec = match ScenarioSpec::from_text(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    registry::apply_cli(&mut spec, cli);
    cli.note(&format!("running spec {path} ({} scenario)\n", spec.kind.name()));
    let runner = match Runner::new(spec) {
        Ok(runner) => runner,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cli.stream {
        if let Err(e) = runner.run_streamed(&mut std::io::stdout().lock()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        match runner.run() {
            Ok(report) => cli.emit(&report.to_table()),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_show(rest: &[String]) -> ExitCode {
    let (name, spec_path, cli_args) = match split_run_args(rest) {
        Ok(parts) => parts,
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let cli = match Cli::try_parse_from(cli_args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let (Some(name), None) = (name, spec_path) else {
        eprintln!("error: `xp show` takes an experiment name\n\n{}", usage());
        return ExitCode::from(2);
    };
    let Some(experiment) = registry::find(&name) else {
        eprintln!(
            "error: unknown experiment {name:?} (registered: {})",
            known_names()
        );
        return ExitCode::from(2);
    };
    match experiment.spec(cli.scale) {
        Some(mut spec) => {
            registry::apply_cli(&mut spec, &cli);
            println!("# {}: {}", experiment.name, experiment.title);
            print!("{}", spec.to_text());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "error: {name} is a composite experiment (several spec runs merged into one \
                 table); it has no single spec to show"
            );
            ExitCode::FAILURE
        }
    }
}

/// Campaign-specific arguments: the spec source (registered name or file
/// path), the optional replay seed, the engine knobs, and the leftover
/// shared CLI flags.
struct CampaignArgs {
    source: Option<String>,
    replay: bool,
    replay_seed: Option<String>,
    seeds: Option<u64>,
    tolerance: Option<f64>,
    slack: Option<f64>,
    cli_args: Vec<String>,
}

fn split_campaign_args(rest: &[String]) -> Result<CampaignArgs, String> {
    let mut parsed = CampaignArgs {
        source: None,
        replay: false,
        replay_seed: None,
        seeds: None,
        tolerance: None,
        slack: None,
        cli_args: Vec::new(),
    };
    let mut iter = rest.iter();
    let value = |iter: &mut std::slice::Iter<'_, String>, flag: &str| {
        iter.next().cloned().ok_or(format!("{flag} requires a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--replay" => parsed.replay = true,
            "--spec" => parsed.source = Some(value(&mut iter, "--spec")?),
            "--seeds" => {
                let v = value(&mut iter, "--seeds")?;
                let seeds: u64 =
                    v.parse().map_err(|_| format!("invalid --seeds value {v:?}"))?;
                if seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
                parsed.seeds = Some(seeds);
            }
            "--tolerance" => {
                let v = value(&mut iter, "--tolerance")?;
                parsed.tolerance =
                    Some(v.parse().map_err(|_| format!("invalid --tolerance value {v:?}"))?);
            }
            "--slack" => {
                let v = value(&mut iter, "--slack")?;
                parsed.slack =
                    Some(v.parse().map_err(|_| format!("invalid --slack value {v:?}"))?);
            }
            "--backend" | "--trials" | "--seed" => {
                parsed.cli_args.push(arg.clone());
                if let Some(v) = iter.next() {
                    parsed.cli_args.push(v.clone());
                }
            }
            other if !other.starts_with('-') => {
                if parsed.source.is_none() {
                    parsed.source = Some(arg.clone());
                } else if parsed.replay && parsed.replay_seed.is_none() {
                    parsed.replay_seed = Some(arg.clone());
                } else {
                    return Err(format!("unexpected argument {other:?}"));
                }
            }
            _ => {
                if let Some(v) = arg.strip_prefix("--spec=") {
                    parsed.source = Some(v.to_string());
                } else {
                    parsed.cli_args.push(arg.clone());
                }
            }
        }
    }
    Ok(parsed)
}

fn cmd_campaign(rest: &[String]) -> ExitCode {
    let args = match split_campaign_args(rest) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if args.cli_args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let cli = match Cli::try_parse_from(args.cli_args.clone()) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let Some(source) = args.source.clone() else {
        eprintln!(
            "error: `xp campaign` needs an experiment name or --spec <path>\n\n{}",
            usage()
        );
        return ExitCode::from(2);
    };

    // Resolve the spec: registered experiment names first, file paths
    // otherwise. An unreadable path is a usage error (exit 2); a file that
    // loads but does not parse is a run failure (exit 1).
    let mut spec = if let Some(experiment) = registry::find(&source) {
        match experiment.spec(cli.scale) {
            Some(spec) => spec,
            None => {
                eprintln!("error: {source} is a composite experiment; campaigns need one spec");
                return ExitCode::from(2);
            }
        }
    } else {
        let text = match std::fs::read_to_string(&source) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read spec file {source:?}: {e}");
                return ExitCode::from(2);
            }
        };
        match ScenarioSpec::from_text(&text) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: {source}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    registry::apply_cli(&mut spec, &cli);

    let mut options = CampaignOptions::default();
    if let Some(seeds) = args.seeds {
        options.seeds = seeds;
    }
    if let Some(tolerance) = args.tolerance {
        options.tolerance = tolerance;
    }
    if let Some(slack) = args.slack {
        options.slack = slack;
    }

    if args.replay {
        let Some(seed_text) = args.replay_seed else {
            eprintln!("error: --replay needs the failing seed to re-run\n\n{}", usage());
            return ExitCode::from(2);
        };
        let seed = match parse_seed(&seed_text) {
            Ok(seed) => seed,
            Err(message) => {
                eprintln!("error: {message}\n\n{}", usage());
                return ExitCode::from(2);
            }
        };
        return replay_campaign(&spec, &options, seed, &cli);
    }

    cli.note(&format!(
        "campaign: {} scenario, {} seeds per cell (oracles: count conservation, consensus \
         correctness, bias monotonicity @ {}, round envelope @ {}x)\n",
        spec.kind.name(),
        options.seeds,
        options.tolerance,
        options.slack,
    ));
    match campaign::run_campaign(&spec, &options) {
        Ok(report) => {
            cli.emit(&report.to_table());
            if report.passed() {
                cli.note(&format!(
                    "\ncampaign PASS: {} cells x {} seeds, no oracle violations",
                    report.cells().len(),
                    options.seeds,
                ));
                ExitCode::SUCCESS
            } else {
                // Failure details go to stderr so `--json` stdout stays
                // machine-parseable.
                for line in report.failure_lines(&source) {
                    eprintln!("{line}");
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {source}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn replay_campaign(
    spec: &ScenarioSpec,
    options: &CampaignOptions,
    seed: u64,
    cli: &Cli,
) -> ExitCode {
    match campaign::replay(spec, options, seed) {
        Ok(outcome) => {
            cli.note(&format!(
                "replaying seed {} (cell {}, seed index {})\n",
                outcome.seed, outcome.point.index, outcome.seed_index,
            ));
            let mut table = Table::new(
                gossip_analysis::observe::TRAJECTORY_HEADERS
                    .iter()
                    .map(|h| h.to_string())
                    .collect::<Vec<_>>(),
            );
            for row in outcome.trajectory.rows() {
                table.push_row(row);
            }
            cli.emit(&table);
            if outcome.violations.is_empty() {
                cli.note("\nreplay PASS: no oracle violations reproduced");
                ExitCode::SUCCESS
            } else {
                for violation in &outcome.violations {
                    eprintln!("{violation}");
                }
                ExitCode::FAILURE
            }
        }
        // A seed that is not part of the campaign is a usage error, like
        // an unknown experiment name.
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Parses a replay seed (decimal, or hexadecimal with an `0x` prefix).
fn parse_seed(text: &str) -> Result<u64, String> {
    let parsed = match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => text.parse(),
    };
    parsed.map_err(|_| format!("invalid replay seed {text:?}"))
}

fn known_names() -> String {
    registry::all()
        .iter()
        .map(|e| e.name)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Parsed `xp serve` flags.
#[derive(Debug, PartialEq)]
struct ServeArgs {
    addr: String,
    workers: usize,
    queue_depth: usize,
    cache_bytes: usize,
    test_shutdown: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        let defaults = ServerConfig::default();
        ServeArgs {
            addr: "127.0.0.1:7878".to_string(),
            workers: defaults.workers,
            queue_depth: defaults.queue_depth,
            cache_bytes: defaults.cache_bytes,
            test_shutdown: false,
        }
    }
}

/// Parses a byte count with an optional `k`/`m`/`g` suffix (powers of
/// 1024), e.g. `64m`.
fn parse_byte_size(text: &str) -> Result<usize, String> {
    let lower = text.trim().to_ascii_lowercase();
    let (digits, shift) = match lower.strip_suffix(['k', 'm', 'g']) {
        Some(digits) => {
            let shift = match lower.as_bytes()[lower.len() - 1] {
                b'k' => 10,
                b'm' => 20,
                _ => 30,
            };
            (digits, shift)
        }
        None => (lower.as_str(), 0),
    };
    let value: usize = digits
        .trim()
        .parse()
        .map_err(|_| format!("invalid byte size {text:?} (expected e.g. 1048576 or 64m)"))?;
    value
        .checked_shl(shift)
        .filter(|v| (*v >> shift) == value)
        .ok_or_else(|| format!("byte size {text:?} overflows"))
}

fn parse_count(flag: &str, text: &str) -> Result<usize, String> {
    text.parse()
        .map_err(|_| format!("invalid {flag} value {text:?}"))
}

fn split_serve_args(rest: &[String]) -> Result<ServeArgs, String> {
    let mut parsed = ServeArgs::default();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--addr" => parsed.addr = value_of("--addr")?,
            "--workers" => parsed.workers = parse_count("--workers", &value_of("--workers")?)?,
            "--queue-depth" => {
                parsed.queue_depth = parse_count("--queue-depth", &value_of("--queue-depth")?)?;
            }
            "--cache-bytes" => {
                parsed.cache_bytes = parse_byte_size(&value_of("--cache-bytes")?)?;
            }
            "--test-shutdown" => parsed.test_shutdown = true,
            other => return Err(format!("unknown `xp serve` argument {other:?}")),
        }
    }
    Ok(parsed)
}

/// `xp serve`: run the scenario service until SIGINT/SIGTERM (or, with
/// `--test-shutdown`, a `POST /v1/shutdown`), then drain and exit 0.
fn cmd_serve(rest: &[String]) -> ExitCode {
    let parsed = match split_serve_args(rest) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let config = ServerConfig {
        addr: parsed.addr,
        workers: parsed.workers,
        queue_depth: parsed.queue_depth,
        cache_bytes: parsed.cache_bytes,
        enable_shutdown_endpoint: parsed.test_shutdown,
        ..ServerConfig::default()
    };
    signal::install();
    let handle = match Server::start(config, SpecService) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts scrape this line for the (possibly ephemeral) port, so it
    // must land before the first request can arrive: flush explicitly.
    println!(
        "xp serve: listening on http://{} (workers={}, queue-depth={}, cache-bytes={}{})",
        handle.addr(),
        parsed.workers,
        parsed.queue_depth,
        parsed.cache_bytes,
        if parsed.test_shutdown { ", shutdown endpoint enabled" } else { "" },
    );
    let _ = std::io::stdout().flush();
    while !signal::triggered() && !handle.shutdown_begun() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    println!("xp serve: shutting down (draining queue and connections)");
    let _ = std::io::stdout().flush();
    handle.shutdown_and_wait();
    ExitCode::SUCCESS
}

/// Parsed `xp load` flags.
#[derive(Debug, PartialEq)]
struct LoadArgs {
    addr: Option<String>,
    clients: usize,
    requests: usize,
    /// Registry experiment name or spec file path (default `f2`).
    source: String,
    json: bool,
    bench_append: Option<String>,
}

impl Default for LoadArgs {
    fn default() -> Self {
        LoadArgs {
            addr: None,
            clients: 64,
            requests: 2,
            source: "f2".to_string(),
            json: false,
            bench_append: None,
        }
    }
}

fn split_load_args(rest: &[String]) -> Result<LoadArgs, String> {
    let mut parsed = LoadArgs::default();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--addr" => parsed.addr = Some(value_of("--addr")?),
            "--clients" => parsed.clients = parse_count("--clients", &value_of("--clients")?)?,
            "--requests" => parsed.requests = parse_count("--requests", &value_of("--requests")?)?,
            "--spec" => parsed.source = value_of("--spec")?,
            "--json" => parsed.json = true,
            "--bench-append" => parsed.bench_append = Some(value_of("--bench-append")?),
            other if !other.starts_with('-') => parsed.source = other.to_string(),
            other => return Err(format!("unknown `xp load` argument {other:?}")),
        }
    }
    if parsed.clients == 0 || parsed.requests == 0 {
        return Err("--clients and --requests must be at least 1".to_string());
    }
    Ok(parsed)
}

/// Resolves an `xp load` spec source: a registry experiment name (quick
/// scale) or a spec file path.
fn load_spec(source: &str) -> Result<ScenarioSpec, String> {
    if let Some(experiment) = registry::find(source) {
        return experiment
            .spec(Scale::Quick)
            .ok_or_else(|| format!("experiment {source:?} is composite, not spec-backed"));
    }
    let text = std::fs::read_to_string(source).map_err(|e| {
        format!(
            "{source:?} is neither a registered experiment (registered: {}) nor a readable \
             spec file ({e})",
            known_names()
        )
    })?;
    ScenarioSpec::from_text(&text).map_err(|e| format!("{source}: {e}"))
}

/// Inserts a `{"name": …}` entry before the closing bracket of a JSON
/// array file, creating the file if it does not exist.
fn append_bench_entry(path: &str, entry: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|_| "[\n]\n".to_string());
    let close = text
        .rfind(']')
        .ok_or_else(|| format!("{path}: not a JSON array"))?;
    let head = text[..close].trim_end();
    let mut out = String::from(head);
    if head.ends_with('}') {
        out.push(',');
    }
    out.push_str("\n  ");
    out.push_str(entry);
    out.push_str("\n]\n");
    std::fs::write(path, out).map_err(|e| format!("{path}: {e}"))
}

/// `xp load`: hammer a scenario service with concurrent clients and
/// verify every streamed response byte-for-byte. Self-hosts a server on
/// an ephemeral port unless `--addr` points at a running one.
fn cmd_load(rest: &[String]) -> ExitCode {
    let parsed = match split_load_args(rest) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let spec = match load_spec(&parsed.source) {
        Ok(spec) => spec,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    // The expected bytes come from running the spec locally once; the
    // service must reproduce them exactly for every client.
    let mut expected = Vec::new();
    let run = Runner::new(spec.clone()).and_then(|r| r.run_streamed(&mut expected));
    if let Err(e) = run {
        eprintln!("error: reference run failed: {e}");
        return ExitCode::FAILURE;
    }
    let (addr, self_hosted) = match &parsed.addr {
        Some(addr) => match addr.parse() {
            Ok(addr) => (addr, None),
            Err(_) => {
                eprintln!("error: invalid --addr {addr:?} (expected host:port)");
                return ExitCode::from(2);
            }
        },
        None => {
            let config = ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                queue_depth: parsed.clients.max(ServerConfig::default().queue_depth),
                ..ServerConfig::default()
            };
            match Server::start(config, SpecService) {
                Ok(handle) => (handle.addr(), Some(handle)),
                Err(e) => {
                    eprintln!("error: cannot start server: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let mut cfg = loadtest::LoadConfig::new(addr, spec.to_text());
    cfg.clients = parsed.clients;
    cfg.requests_per_client = parsed.requests;
    cfg.expected = Some(expected);
    let report = loadtest::run(&cfg);
    if let Some(handle) = self_hosted {
        handle.shutdown_and_wait();
    }
    let name = format!("xp_load/{}_c{}x{}", parsed.source, parsed.clients, parsed.requests);
    if parsed.json {
        println!("{}", report.to_json(&name));
    } else {
        println!(
            "xp load: {} clients x {} requests against http://{addr}",
            parsed.clients, parsed.requests
        );
        println!(
            "  ok {}/{} corrupted {} dropped {} backpressure-retries {}",
            report.ok,
            report.total_requests,
            report.corrupted,
            report.dropped,
            report.backpressure_retries
        );
        println!(
            "  elapsed {:.2} s, throughput {:.1} req/s, mean latency {:.2} ms",
            report.elapsed.as_secs_f64(),
            report.throughput_rps(),
            report.mean_latency().as_secs_f64() * 1e3
        );
    }
    if let Some(path) = &parsed.bench_append {
        if let Err(message) = append_bench_entry(path, &report.to_bench_entry(&name)) {
            eprintln!("error: cannot append bench entry: {message}");
            return ExitCode::FAILURE;
        }
        println!("xp load: appended bench entry to {path}");
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "error: load test not clean: {} corrupted, {} dropped of {}",
            report.corrupted, report.dropped, report.total_requests
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serve_args_parse_flags_and_byte_suffixes() {
        let parsed = split_serve_args(&to_args(&[
            "--addr",
            "0.0.0.0:8080",
            "--workers",
            "4",
            "--queue-depth",
            "16",
            "--cache-bytes",
            "64m",
            "--test-shutdown",
        ]))
        .unwrap();
        assert_eq!(parsed.addr, "0.0.0.0:8080");
        assert_eq!(parsed.workers, 4);
        assert_eq!(parsed.queue_depth, 16);
        assert_eq!(parsed.cache_bytes, 64 << 20);
        assert!(parsed.test_shutdown);

        assert_eq!(split_serve_args(&[]).unwrap(), ServeArgs::default());
        assert!(split_serve_args(&to_args(&["--workers"])).is_err());
        assert!(split_serve_args(&to_args(&["--nope"])).is_err());
    }

    #[test]
    fn byte_sizes_accept_suffixes_and_reject_garbage() {
        assert_eq!(parse_byte_size("1048576").unwrap(), 1 << 20);
        assert_eq!(parse_byte_size("8k").unwrap(), 8 << 10);
        assert_eq!(parse_byte_size("2G").unwrap(), 2 << 30);
        assert!(parse_byte_size("lots").is_err());
        assert!(parse_byte_size("9999999999999999g").is_err());
    }

    #[test]
    fn load_args_default_and_parse() {
        let parsed = split_load_args(&[]).unwrap();
        assert_eq!(parsed, LoadArgs::default());
        assert_eq!(parsed.source, "f2");
        assert_eq!(parsed.clients, 64);

        let parsed = split_load_args(&to_args(&[
            "--addr",
            "127.0.0.1:7878",
            "--clients",
            "8",
            "--requests",
            "3",
            "t1",
            "--json",
        ]))
        .unwrap();
        assert_eq!(parsed.addr.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(parsed.clients, 8);
        assert_eq!(parsed.requests, 3);
        assert_eq!(parsed.source, "t1");
        assert!(parsed.json);

        assert!(split_load_args(&to_args(&["--clients", "0"])).is_err());
        assert!(split_load_args(&to_args(&["--nope"])).is_err());
    }

    #[test]
    fn bench_entries_append_inside_the_array() {
        let dir = std::env::temp_dir().join("xp-bench-append-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        append_bench_entry(path, "{\"name\": \"a\", \"ns_per_iter\": 1.0, \"iters\": 2}")
            .unwrap();
        append_bench_entry(path, "{\"name\": \"b\", \"ns_per_iter\": 3.0, \"iters\": 4}")
            .unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.starts_with('['), "array preserved: {text}");
        assert!(text.trim_end().ends_with(']'), "array closed: {text}");
        assert_eq!(text.matches("\"name\"").count(), 2);
        assert!(text.contains("},\n  {"), "entries comma-separated: {text}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn run_args_split_name_spec_and_flags_in_any_order() {
        let (name, spec, cli) = split_run_args(&to_args(&["f2", "--json", "--trials", "3"])).unwrap();
        assert_eq!(name.as_deref(), Some("f2"));
        assert_eq!(spec, None);
        assert_eq!(cli, to_args(&["--json", "--trials", "3"]));

        // Flags before the name: the flag value must not become the name.
        let (name, _, cli) = split_run_args(&to_args(&["--backend", "counting", "f2"])).unwrap();
        assert_eq!(name.as_deref(), Some("f2"));
        assert_eq!(cli, to_args(&["--backend", "counting"]));

        // --spec with trailing space-separated flag values.
        let (name, spec, cli) =
            split_run_args(&to_args(&["--spec", "a.spec", "--trials", "1", "--seed", "9"]))
                .unwrap();
        assert_eq!(name, None);
        assert_eq!(spec.as_deref(), Some("a.spec"));
        assert_eq!(cli, to_args(&["--trials", "1", "--seed", "9"]));

        let (_, spec, _) = split_run_args(&to_args(&["--spec=b.spec"])).unwrap();
        assert_eq!(spec.as_deref(), Some("b.spec"));

        assert!(split_run_args(&to_args(&["--spec"])).is_err());
    }

    #[test]
    fn campaign_args_split_source_seed_and_knobs() {
        let args =
            split_campaign_args(&to_args(&["--spec", "c.spec", "--seeds", "64", "--json"]))
                .unwrap();
        assert_eq!(args.source.as_deref(), Some("c.spec"));
        assert!(!args.replay);
        assert_eq!(args.seeds, Some(64));
        assert_eq!(args.cli_args, to_args(&["--json"]));

        // The pasted replay command: `--replay <source> <seed> --seeds N`.
        let args = split_campaign_args(&to_args(&[
            "--replay", "c.spec", "1234", "--seeds", "100",
        ]))
        .unwrap();
        assert!(args.replay);
        assert_eq!(args.source.as_deref(), Some("c.spec"));
        assert_eq!(args.replay_seed.as_deref(), Some("1234"));
        assert_eq!(args.seeds, Some(100));

        assert!(split_campaign_args(&to_args(&["--seeds", "0"])).is_err());
        assert!(split_campaign_args(&to_args(&["--seeds"])).is_err());
        assert!(split_campaign_args(&to_args(&["a.spec", "extra"])).is_err());
    }

    #[test]
    fn replay_seeds_parse_in_decimal_and_hex() {
        assert_eq!(parse_seed("1234").unwrap(), 1234);
        assert_eq!(parse_seed("0xBEEF").unwrap(), 0xBEEF);
        assert!(parse_seed("nope").is_err());
    }
}
