//! `xp` — the single experiment driver.
//!
//! ```text
//! xp list                         # all registered experiments
//! xp run f2 [--full --json --backend agent|counting|auto --trials N --seed S]
//! xp run --spec path.spec [...]   # run a scenario spec file
//! xp show f2 [--full]             # print a spec-backed experiment's spec text
//! xp help
//! ```
//!
//! Registered experiments live in [`noisy_bench::registry`]; spec files are
//! parsed by [`noisy_bench::spec::ScenarioSpec::from_text`].

use gossip_analysis::table::Table;
use noisy_bench::registry;
use noisy_bench::runner::Runner;
use noisy_bench::spec::ScenarioSpec;
use noisy_bench::Cli;
use std::process::ExitCode;

const USAGE_HEAD: &str = "\
usage:
  xp list                      list the registered experiments
  xp run <name> [options]      run a registered experiment
  xp run --spec <path> [opts]  run a scenario spec file
  xp show <name> [--full]      print a spec-backed experiment's spec text
  xp help                      print this message
";

fn usage() -> String {
    format!("{USAGE_HEAD}\n{}", Cli::USAGE)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    match command.as_str() {
        "list" => cmd_list(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "show" => cmd_show(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown command {other:?}\n\n{}", usage());
            ExitCode::from(2)
        }
    }
}

fn cmd_list(rest: &[String]) -> ExitCode {
    if !rest.is_empty() {
        eprintln!("error: `xp list` takes no arguments\n\n{}", usage());
        return ExitCode::from(2);
    }
    let mut table = Table::new(vec!["name", "kind", "title"]);
    for experiment in registry::all() {
        table.push_row(vec![
            experiment.name.to_string(),
            if experiment.is_spec() { "spec" } else { "composite" }.to_string(),
            experiment.title.to_string(),
        ]);
    }
    print!("{table}");
    ExitCode::SUCCESS
}

/// The experiment name, `--spec` path and remaining shared CLI flags of an
/// `xp run` / `xp show` invocation.
type RunArgs = (Option<String>, Option<String>, Vec<String>);

/// Splits `xp run` arguments into the experiment name / `--spec` path and
/// the shared CLI flags. Value-taking CLI flags (`--backend`, `--trials`,
/// `--seed`) keep their space-separated value, so flags may appear before
/// or after the experiment name.
fn split_run_args(rest: &[String]) -> Result<RunArgs, String> {
    let mut name = None;
    let mut spec_path = None;
    let mut cli_args = Vec::new();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        if arg == "--spec" {
            let value = iter.next().ok_or("--spec requires a file path")?;
            spec_path = Some(value.clone());
        } else if let Some(value) = arg.strip_prefix("--spec=") {
            spec_path = Some(value.to_string());
        } else if matches!(arg.as_str(), "--backend" | "--trials" | "--seed") {
            cli_args.push(arg.clone());
            // Keep the flag's value out of the name slot; a missing value
            // is reported by the shared CLI parser.
            if let Some(value) = iter.next() {
                cli_args.push(value.clone());
            }
        } else if !arg.starts_with('-') && name.is_none() {
            name = Some(arg.clone());
        } else {
            cli_args.push(arg.clone());
        }
    }
    Ok((name, spec_path, cli_args))
}

fn cmd_run(rest: &[String]) -> ExitCode {
    let (name, spec_path, cli_args) = match split_run_args(rest) {
        Ok(parts) => parts,
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if cli_args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let cli = match Cli::try_parse_from(cli_args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match (name, spec_path) {
        (Some(name), None) => {
            let Some(experiment) = registry::find(&name) else {
                eprintln!(
                    "error: unknown experiment {name:?} (registered: {})",
                    known_names()
                );
                return ExitCode::from(2);
            };
            match registry::run(experiment, &cli) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: experiment {name} failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        (None, Some(path)) => run_spec_file(&path, &cli),
        (Some(_), Some(_)) => {
            eprintln!("error: give an experiment name or --spec, not both\n\n{}", usage());
            ExitCode::from(2)
        }
        (None, None) => {
            eprintln!("error: `xp run` needs an experiment name or --spec <path>\n\n{}", usage());
            ExitCode::from(2)
        }
    }
}

fn run_spec_file(path: &str, cli: &Cli) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            // A spec file that cannot be loaded is a usage error (exit 2,
            // like an unknown experiment name), reported with the path the
            // lookup actually used so relative-path typos are obvious.
            eprintln!("error: cannot read spec file {path:?}: {e}");
            return ExitCode::from(2);
        }
    };
    // Parse errors keep their 1-based line numbers, prefixed with the path.
    let mut spec = match ScenarioSpec::from_text(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    registry::apply_cli(&mut spec, cli);
    cli.note(&format!("running spec {path} ({} scenario)\n", spec.kind.name()));
    let runner = match Runner::new(spec) {
        Ok(runner) => runner,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cli.stream {
        if let Err(e) = runner.run_streamed(&mut std::io::stdout().lock()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        match runner.run() {
            Ok(report) => cli.emit(&report.to_table()),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_show(rest: &[String]) -> ExitCode {
    let (name, spec_path, cli_args) = match split_run_args(rest) {
        Ok(parts) => parts,
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let cli = match Cli::try_parse_from(cli_args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let (Some(name), None) = (name, spec_path) else {
        eprintln!("error: `xp show` takes an experiment name\n\n{}", usage());
        return ExitCode::from(2);
    };
    let Some(experiment) = registry::find(&name) else {
        eprintln!(
            "error: unknown experiment {name:?} (registered: {})",
            known_names()
        );
        return ExitCode::from(2);
    };
    match experiment.spec(cli.scale) {
        Some(mut spec) => {
            registry::apply_cli(&mut spec, &cli);
            println!("# {}: {}", experiment.name, experiment.title);
            print!("{}", spec.to_text());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "error: {name} is a composite experiment (several spec runs merged into one \
                 table); it has no single spec to show"
            );
            ExitCode::FAILURE
        }
    }
}

fn known_names() -> String {
    registry::all()
        .iter()
        .map(|e| e.name)
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn run_args_split_name_spec_and_flags_in_any_order() {
        let (name, spec, cli) = split_run_args(&to_args(&["f2", "--json", "--trials", "3"])).unwrap();
        assert_eq!(name.as_deref(), Some("f2"));
        assert_eq!(spec, None);
        assert_eq!(cli, to_args(&["--json", "--trials", "3"]));

        // Flags before the name: the flag value must not become the name.
        let (name, _, cli) = split_run_args(&to_args(&["--backend", "counting", "f2"])).unwrap();
        assert_eq!(name.as_deref(), Some("f2"));
        assert_eq!(cli, to_args(&["--backend", "counting"]));

        // --spec with trailing space-separated flag values.
        let (name, spec, cli) =
            split_run_args(&to_args(&["--spec", "a.spec", "--trials", "1", "--seed", "9"]))
                .unwrap();
        assert_eq!(name, None);
        assert_eq!(spec.as_deref(), Some("a.spec"));
        assert_eq!(cli, to_args(&["--trials", "1", "--seed", "9"]));

        let (_, spec, _) = split_run_args(&to_args(&["--spec=b.spec"])).unwrap();
        assert_eq!(spec.as_deref(), Some("b.spec"));

        assert!(split_run_args(&to_args(&["--spec"])).is_err());
    }
}
