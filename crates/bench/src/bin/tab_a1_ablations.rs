//! Experiment A1 — ablations of the protocol's design choices.
//!
//! Three knobs called out in DESIGN.md are varied independently on the same
//! rumor-spreading instance:
//!
//! 1. **Stage 2 sample size** (`c`): Proposition 1 needs `ℓ = c/ε²` with a
//!    large-enough `c`; with `c` far too small the per-phase amplification
//!    factor drops below 1 and the protocol loses reliability.
//! 2. **Stage 1 final-phase length** (`φ`): the long last phase of Stage 1
//!    is what activates the stragglers; shrinking it leaves undecided nodes
//!    at the start of Stage 2.
//! 3. **Schedule ε vs channel ε**: tuning the schedule for a much larger ε
//!    than the channel provides under-provisions every phase.

use gossip_analysis::table::Table;
use noisy_bench::{rumor_spreading_trials_on, Cli};
use noisy_channel::NoiseMatrix;
use plurality_core::{ProtocolConstants, ProtocolParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = Cli::from_args();
    let scale = cli.scale;
    let n = scale.pick(2_000, 10_000);
    let k = 3;
    let channel_eps = 0.2;
    let trials = scale.pick(5, 20);
    let noise = NoiseMatrix::uniform(k, channel_eps)?;

    cli.note(&format!(
        "A1: protocol ablations (rumor spreading, n = {n}, k = {k}, channel eps = {channel_eps})\n"
    ));

    let mut table = Table::new(vec!["variant", "success", "rounds", "stage-1 bias"]);

    let mut run_variant = |label: &str, constants: ProtocolConstants, schedule_eps: f64|
     -> Result<(), Box<dyn std::error::Error>> {
        let params = ProtocolParams::builder(n, k)
            .epsilon(schedule_eps)
            .constants(constants)
            .seed(0xA1)
            .build()?;
        let summary = rumor_spreading_trials_on(cli.backend, &params, &noise, trials);
        table.push_row(vec![
            label.to_string(),
            summary.success.to_string(),
            format!("{:.0}", summary.rounds.mean()),
            format!("{:.4}", summary.stage1_bias.mean()),
        ]);
        Ok(())
    };

    let defaults = ProtocolConstants::default();
    run_variant("baseline (default constants)", defaults, channel_eps)?;

    // 1. Stage 2 sample size far too small.
    run_variant(
        "tiny Stage-2 samples (c = 0.25)",
        ProtocolConstants { c: 0.25, ..defaults },
        channel_eps,
    )?;
    // ... and generously larger.
    run_variant(
        "large Stage-2 samples (c = 12)",
        ProtocolConstants { c: 12.0, ..defaults },
        channel_eps,
    )?;

    // 2. Starved Stage 1 final phase.
    run_variant(
        "short Stage-1 final phase (phi = 0.3)",
        ProtocolConstants {
            s: 0.1,
            beta: 0.2,
            phi: 0.3,
            ..defaults
        },
        channel_eps,
    )?;

    // 3. Schedule tuned for a channel twice as clean as reality.
    run_variant(
        "schedule assumes eps = 0.4 (channel has 0.2)",
        defaults,
        0.4,
    )?;

    cli.emit(&table);
    cli.note("");
    cli.note(
        "(the baseline and the larger-sample variant succeed; starving Stage 2 samples, the\n\
         Stage-1 final phase, or the schedule's eps costs reliability — these are the design\n\
         choices the paper's constants protect)",
    );
    Ok(())
}
