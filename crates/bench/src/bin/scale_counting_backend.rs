//! Demonstration of the count-based backend at scales the agent-level
//! simulator cannot touch: the **full two-stage protocol at n = 10⁷**
//! (and, with `--full`, n = 10⁸), timed end to end.
//!
//! ```text
//! cargo run --release -p noisy-bench --bin scale_counting_backend [-- --full]
//! ```
//!
//! Each phase of the counting backend costs O(k²) random draws regardless
//! of n, so the wall-clock time is dominated by the number of *phases*
//! (Θ(log n) of them) — whole runs complete in seconds where the
//! agent-level backend would need hours.

use gossip_analysis::table::Table;
use noisy_bench::Scale;
use noisy_channel::NoiseMatrix;
use plurality_core::{ExecutionBackend, ProtocolParams, TwoStageProtocol};
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let sizes: &[usize] = scale.pick(&[1_000_000, 10_000_000][..], &[10_000_000, 100_000_000][..]);
    let eps = 0.25;
    let k = 3;

    let mut table = Table::new(vec![
        "n", "backend", "rounds", "messages", "winner_share", "succeeded", "seconds",
    ]);
    for &n in sizes {
        let noise = NoiseMatrix::uniform(k, eps).expect("valid noise");
        let params = ProtocolParams::builder(n, k)
            .epsilon(eps)
            .seed(7)
            .build()
            .expect("valid params");
        let protocol = TwoStageProtocol::new(params, noise).expect("compatible dimensions");
        // 40% / 30% / 30%: a plurality but far from an absolute majority.
        let counts = [n * 2 / 5, n * 3 / 10, n - n * 2 / 5 - n * 3 / 10];

        let start = Instant::now();
        let outcome = protocol
            .run_plurality_consensus_on(ExecutionBackend::Counting, &counts)
            .expect("run completes");
        let elapsed = start.elapsed().as_secs_f64();

        let dist = outcome.final_distribution();
        let share = dist.counts()[0] as f64 / dist.num_nodes() as f64;
        table.push_row(vec![
            format!("{n}"),
            "counting".to_string(),
            format!("{}", outcome.rounds()),
            format!("{:.3e}", outcome.messages() as f64),
            format!("{share:.4}"),
            format!("{}", outcome.succeeded()),
            format!("{elapsed:.2}"),
        ]);
    }
    println!("{table}");
    println!(
        "(phases cost O(k^2) draws on the counting backend; the same runs on the\n\
         agent-level backend would push ~n log n messages individually)"
    );
}
