//! Demonstration of the count-based backend at scales the agent-level
//! simulator cannot touch: the **full two-stage protocol at n = 10⁷**
//! (and, with `--full`, n = 10⁸), timed end to end.
//!
//! ```text
//! cargo run --release -p noisy-bench --bin scale_counting_backend [-- --full]
//! ```
//!
//! Each phase of the counting backend costs O(k²) random draws regardless
//! of n, so the wall-clock time is dominated by the number of *phases*
//! (Θ(log n) of them) — whole runs complete in seconds where the
//! agent-level backend would need hours.

use gossip_analysis::table::Table;
use noisy_bench::Cli;
use noisy_channel::NoiseMatrix;
use plurality_core::{ProtocolParams, TwoStageProtocol};
use std::time::Instant;

fn main() {
    // The backend is no longer hardcoded: the default `--backend auto`
    // resolves each size through the calibrated cost model (these sizes are
    // all far above the exactness ceiling, so Auto lands on Counting).
    let cli = Cli::from_args();
    let scale = cli.scale;
    let sizes: &[usize] = scale.pick(&[1_000_000, 10_000_000][..], &[10_000_000, 100_000_000][..]);
    let eps = 0.25;
    let k = 3;

    let mut table = Table::new(vec![
        "n", "backend", "rounds", "messages", "winner_share", "succeeded", "seconds",
    ]);
    for &n in sizes {
        let noise = NoiseMatrix::uniform(k, eps).expect("valid noise");
        let params = ProtocolParams::builder(n, k)
            .epsilon(eps)
            .seed(7)
            .build()
            .expect("valid params");
        let protocol = TwoStageProtocol::new(params, noise).expect("compatible dimensions");
        let resolved = protocol.resolve(cli.backend);
        // 40% / 30% / 30%: a plurality but far from an absolute majority.
        let counts = [n * 2 / 5, n * 3 / 10, n - n * 2 / 5 - n * 3 / 10];

        let start = Instant::now();
        let outcome = protocol
            .run_plurality_consensus_on(cli.backend, &counts)
            .expect("run completes");
        let elapsed = start.elapsed().as_secs_f64();

        let dist = outcome.final_distribution();
        let share = dist.counts()[0] as f64 / dist.num_nodes() as f64;
        table.push_row(vec![
            format!("{n}"),
            format!("{resolved:?}").to_lowercase(),
            format!("{}", outcome.rounds()),
            format!("{:.3e}", outcome.messages() as f64),
            format!("{share:.4}"),
            format!("{}", outcome.succeeded()),
            format!("{elapsed:.2}"),
        ]);
    }
    cli.emit(&table);
    cli.note(
        "(phases cost O(k^2) draws on the counting backend; the same runs on the\n\
         agent-level backend would push ~n log n messages individually)",
    );
}
