//! Experiment F1 — Theorem 1: rumor spreading completes in `O(log n / ε²)`
//! rounds w.h.p., for any constant number of opinions.
//!
//! Sweeps the network size `n` for k ∈ {2, 3, 5} at fixed ε, runs repeated
//! rumor-spreading instances, and reports the success rate and the measured
//! rounds normalized by `ln n / ε²`. The paper's claim corresponds to the
//! success rate staying ≈ 1 and the normalized constant staying flat as `n`
//! grows.
//!
//! Repetitions run on the **parallel sweep harness**
//! ([`Sweep::run_par`]): each `(point, rep)` cell derives its seed from
//! `(base seed, point index, rep)`, so the printed statistics are identical
//! to a sequential `run_seeded` sweep and independent of the worker count.

use gossip_analysis::ci::WilsonInterval;
use gossip_analysis::sweep::Sweep;
use gossip_analysis::table::Table;
use noisy_bench::Cli;
use noisy_channel::NoiseMatrix;
use plurality_core::{bounds, ProtocolParams, TwoStageProtocol};
use pushsim::Opinion;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli = Cli::from_args();
    let scale = cli.scale;
    let backend = cli.backend;
    let epsilon = 0.25;
    let sizes: Vec<usize> = scale.pick(
        vec![1_000, 2_000, 4_000],
        vec![1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000],
    );
    let trials = scale.pick(5, 30);

    cli.note(&format!(
        "F1: rounds to consensus vs n (rumor spreading, eps = {epsilon})"
    ));
    cli.note("paper prediction: success ~ 1, rounds / (ln n / eps^2) roughly constant\n");

    let mut table = Table::new(vec![
        "k",
        "n",
        "success",
        "rounds",
        "rounds / (ln n / eps^2)",
        "stage-1 bias",
    ]);
    for &k in &[2usize, 3, 5] {
        let noise = NoiseMatrix::uniform(k, epsilon)?;
        let points = sizes.clone();
        let rows = Sweep::over(points)
            .repetitions(trials)
            .run_par(0xF1 + k as u64, 0, |&n, ctx, row| {
                let params = ProtocolParams::builder(n, k)
                    .epsilon(epsilon)
                    .seed(ctx.seed)
                    .build()
                    .expect("valid params");
                let protocol =
                    TwoStageProtocol::new(params, noise.clone()).expect("compatible dimensions");
                let outcome = protocol
                    .run_rumor_spreading_on(backend, Opinion::new(0))
                    .expect("run completes");
                row.record("success", if outcome.succeeded() { 1.0 } else { 0.0 });
                row.record("rounds", outcome.rounds() as f64);
                if let Some(bias) = outcome
                    .stage_records(plurality_core::StageId::One)
                    .last()
                    .and_then(|r| r.bias_after())
                {
                    row.record("stage1_bias", bias);
                }
            });
        for (&n, row) in sizes.iter().zip(&rows) {
            let success = row.metric("success").expect("recorded");
            let rounds = row.metric("rounds").expect("recorded");
            let bias = row.metric("stage1_bias");
            let wins = success.mean() * success.len() as f64;
            table.push_row(vec![
                k.to_string(),
                n.to_string(),
                WilsonInterval::from_trials(wins.round() as u64, success.len()).to_string(),
                format!("{:.0}", rounds.mean()),
                format!("{:.2}", rounds.mean() / bounds::rounds_bound(n, epsilon)),
                format!("{:.4}", bias.map(|b| b.mean()).unwrap_or(f64::NAN)),
            ]);
        }
    }
    cli.emit(&table);
    Ok(())
}
