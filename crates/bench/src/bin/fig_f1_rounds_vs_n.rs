//! Experiment F1 — Theorem 1: rumor spreading completes in `O(log n / ε²)`
//! rounds w.h.p., for any constant number of opinions.
//!
//! Sweeps the network size `n` for k ∈ {2, 3, 5} at fixed ε, runs repeated
//! rumor-spreading instances, and reports the success rate and the measured
//! rounds normalized by `ln n / ε²`. The paper's claim corresponds to the
//! success rate staying ≈ 1 and the normalized constant staying flat as `n`
//! grows.

use gossip_analysis::table::Table;
use noisy_bench::{rumor_spreading_trials, Scale};
use noisy_channel::NoiseMatrix;
use plurality_core::{bounds, ProtocolParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    let epsilon = 0.25;
    let sizes: Vec<usize> = scale.pick(vec![1_000, 2_000, 4_000], vec![1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000]);
    let trials = scale.pick(5, 30);

    println!("F1: rounds to consensus vs n (rumor spreading, eps = {epsilon})");
    println!("paper prediction: success ~ 1, rounds / (ln n / eps^2) roughly constant\n");

    let mut table = Table::new(vec![
        "k",
        "n",
        "success",
        "rounds",
        "rounds / (ln n / eps^2)",
        "stage-1 bias",
    ]);
    for &k in &[2usize, 3, 5] {
        let noise = NoiseMatrix::uniform(k, epsilon)?;
        for &n in &sizes {
            let params = ProtocolParams::builder(n, k)
                .epsilon(epsilon)
                .seed(0xF1)
                .build()?;
            let summary = rumor_spreading_trials(&params, &noise, trials);
            table.push_row(vec![
                k.to_string(),
                n.to_string(),
                summary.success.to_string(),
                format!("{:.0}", summary.rounds.mean()),
                format!("{:.2}", summary.rounds.mean() / bounds::rounds_bound(n, epsilon)),
                format!("{:.4}", summary.stage1_bias.mean()),
            ]);
        }
    }
    print!("{table}");
    Ok(())
}
