//! The experiment registry: every figure/table of DESIGN.md §5, runnable by
//! name through the `xp` driver (`xp run f2`), plus the plumbing that turns
//! a [`ScenarioSpec`] + [`Cli`] into printed output.
//!
//! Two kinds of entries exist:
//!
//! * **Spec-backed** ([`ExperimentKind::Spec`]) — the experiment *is* one
//!   [`ScenarioSpec`] (scale-dependent grid sizes aside). `xp show <name>`
//!   prints the spec text; running it goes through the generic
//!   [`Runner`].
//! * **Composite** ([`ExperimentKind::Custom`]) — experiments that combine
//!   several spec runs into one bespoke table (T1's protocol-vs-baselines
//!   comparison, A1's constant ablations, …) or measure something below
//!   the scenario level (F8's delivery-semantics statistics, F4/T4's
//!   analytic bounds). These still honour the shared [`Cli`] flags.
//!
//! The registered names are `f1`–`f8`, `t1`–`t4`, `a1`, `topo`, `topoxl`,
//! `churn`, `burst` and `scale`.

use crate::runner::{PointResult, PointSummary, Runner};
use crate::spec::{InitSpec, Metric, ObserveMode, ScenarioKind, ScenarioSpec};
use crate::{Cli, Scale, TrialSummary};
use gossip_analysis::table::Table;
use noisy_channel::{NoiseMatrix, NoiseSpec};
use opinion_dynamics::RuleSpec;
use plurality_core::{bounds, ExecutionBackend, ProtocolParams, TwoStageProtocol};
use pushsim::{ChurnSpec, DeliverySemantics, NoiseSchedule, TopologySpec};
use std::error::Error;
use std::time::Instant;

/// How an [`Experiment`] is implemented.
pub enum ExperimentKind {
    /// The experiment is a single [`ScenarioSpec`], produced for the
    /// requested [`Scale`].
    Spec(fn(Scale) -> ScenarioSpec),
    /// A composite or sub-scenario experiment with its own run function.
    Custom(fn(&Cli) -> Result<(), Box<dyn Error>>),
}

/// One registered experiment.
pub struct Experiment {
    /// The short name used on the command line (`f1`, `t3`, `scale`, …).
    pub name: &'static str,
    /// A one-line description shown by `xp list`.
    pub title: &'static str,
    /// The implementation.
    pub kind: ExperimentKind,
}

impl Experiment {
    /// True for spec-backed entries (`xp show` can print their spec).
    pub fn is_spec(&self) -> bool {
        matches!(self.kind, ExperimentKind::Spec(_))
    }

    /// The experiment's [`ScenarioSpec`] at the given scale, for
    /// spec-backed entries.
    pub fn spec(&self, scale: Scale) -> Option<ScenarioSpec> {
        match self.kind {
            ExperimentKind::Spec(make) => Some(make(scale)),
            ExperimentKind::Custom(_) => None,
        }
    }
}

/// All registered experiments, in presentation order.
pub fn all() -> &'static [Experiment] {
    &EXPERIMENTS
}

/// Looks an experiment up by name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().find(|e| e.name == name)
}

/// Runs one experiment with the shared CLI options.
///
/// # Errors
///
/// Propagates spec validation/execution errors and the composite
/// experiments' own failures.
pub fn run(experiment: &Experiment, cli: &Cli) -> Result<(), Box<dyn Error>> {
    run_to(experiment, cli, &mut std::io::stdout().lock())
}

/// Runs one experiment writing its output to a caller-supplied sink —
/// the sink-generic core of [`run`], shared by the CLI (stdout) and
/// the scenario service (HTTP response buffers). Spec-backed entries
/// stream or tabulate into `out`; composite ([`ExperimentKind::Custom`])
/// entries drive their own stdout output regardless of `out` and are
/// therefore only exposed through the CLI.
///
/// # Errors
///
/// Propagates spec validation/execution errors, write errors on `out`,
/// and the composite experiments' own failures.
pub fn run_to(
    experiment: &Experiment,
    cli: &Cli,
    out: &mut dyn std::io::Write,
) -> Result<(), Box<dyn Error>> {
    match experiment.kind {
        ExperimentKind::Spec(make) => {
            let mut spec = make(cli.scale);
            apply_cli(&mut spec, cli);
            cli.note_to(
                &format!("{}: {}\n", experiment.name.to_uppercase(), experiment.title),
                out,
            )?;
            let runner = Runner::new(spec)?;
            if cli.stream {
                runner.run_streamed(out)?;
            } else {
                cli.emit_to(&runner.run()?.to_table(), out)?;
            }
            Ok(())
        }
        ExperimentKind::Custom(f) => f(cli),
    }
}

/// Applies the CLI's `--backend`, `--trials` and `--seed` overrides to a
/// spec (used for registry entries and `xp run --spec`).
pub fn apply_cli(spec: &mut ScenarioSpec, cli: &Cli) {
    if let Some(backend) = cli.backend {
        spec.backend = backend;
    }
    if let Some(trials) = cli.trials {
        spec.trials = trials;
    }
    if let Some(seed) = cli.seed {
        spec.seed = seed;
    }
}

static EXPERIMENTS: [Experiment; 18] = [
    Experiment {
        name: "f1",
        title: "rounds to consensus vs n (Theorem 1: O(log n / eps^2) rumor spreading)",
        kind: ExperimentKind::Spec(f1_spec),
    },
    Experiment {
        name: "f2",
        title: "rounds to consensus vs eps (Theorems 1-2: the 1/eps^2 scaling)",
        kind: ExperimentKind::Spec(f2_spec),
    },
    Experiment {
        name: "f3",
        title: "success rate vs initial bias (Theorem 2: the sqrt(log n / |S|) threshold)",
        kind: ExperimentKind::Spec(f3_spec),
    },
    Experiment {
        name: "f4",
        title: "sample-majority gap vs the Proposition 1 lower bound",
        kind: ExperimentKind::Spec(f4_spec),
    },
    Experiment {
        name: "f5",
        title: "per-phase bias trajectory (Lemmas 7 and 12)",
        kind: ExperimentKind::Spec(f5_spec),
    },
    Experiment {
        name: "f6",
        title: "(eps, delta)-majority-preservation vs end-to-end protocol success (Section 4)",
        kind: ExperimentKind::Custom(run_f6),
    },
    Experiment {
        name: "f7",
        title: "the small-epsilon regime of Appendix D",
        kind: ExperimentKind::Spec(f7_spec),
    },
    Experiment {
        name: "f8",
        title: "delivery-semantics comparison (Claim 1 and Lemma 3: processes O, B, P)",
        kind: ExperimentKind::Spec(f8_spec),
    },
    Experiment {
        name: "t1",
        title: "two-stage protocol vs baseline dynamics under identical noise",
        kind: ExperimentKind::Custom(run_t1),
    },
    Experiment {
        name: "t2",
        title: "per-node memory footprint vs the log log n + log 1/eps scale",
        kind: ExperimentKind::Custom(run_t2),
    },
    Experiment {
        name: "t3",
        title: "Stage 1 activation growth and end-of-stage bias (Claims 2-3, Lemma 4)",
        kind: ExperimentKind::Spec(t3_spec),
    },
    Experiment {
        name: "t4",
        title: "parity of the Stage 2 sample size (Lemma 17), exact evaluation",
        kind: ExperimentKind::Custom(run_t4),
    },
    Experiment {
        name: "a1",
        title: "protocol ablations: Stage 2 samples, Stage 1 final phase, schedule eps",
        kind: ExperimentKind::Custom(run_a1),
    },
    Experiment {
        name: "topo",
        title: "plurality consensus across communication topologies (complete vs sparse graphs)",
        kind: ExperimentKind::Spec(topo_spec),
    },
    Experiment {
        name: "topoxl",
        title: "sparse-topology consensus at n = 10^6 (10^7 with --full) on the block-counting backend",
        kind: ExperimentKind::Spec(topo_xl_spec),
    },
    Experiment {
        name: "churn",
        title: "plurality consensus under population churn at n = 10^6, per-phase population trajectory",
        kind: ExperimentKind::Spec(churn_spec),
    },
    Experiment {
        name: "burst",
        title: "reconvergence after a transient noise burst and a one-shot departure burst",
        kind: ExperimentKind::Spec(burst_spec),
    },
    Experiment {
        name: "scale",
        title: "full protocol at n = 10^7 (and 10^8 with --full) on the counting backend",
        kind: ExperimentKind::Custom(run_scale),
    },
];

// ---------------------------------------------------------------------------
// Spec-backed experiments.
// ---------------------------------------------------------------------------

/// F1 — Theorem 1: rumor spreading completes in `O(log n / ε²)` rounds for
/// any constant number of opinions. Sweeps `k × n` at fixed ε; success
/// should stay ≈ 1 and the normalized round count flat.
fn f1_spec(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(ScenarioKind::RumorSpreading { source: 0 }, 4_000, 3);
    spec.epsilon = 0.25;
    spec.noise = NoiseSpec::Uniform { epsilon: 0.25 };
    spec.trials = scale.pick(5, 30);
    spec.seed = 0xF1;
    spec.sweep.k = vec![2, 3, 5];
    spec.sweep.n = scale.pick(
        vec![1_000, 2_000, 4_000],
        vec![1_000, 2_000, 4_000, 8_000, 16_000, 32_000, 64_000],
    );
    spec.metrics = vec![
        Metric::Success,
        Metric::Rounds,
        Metric::RoundsNorm,
        Metric::Stage1Bias,
    ];
    spec
}

/// F2 — Theorems 1 and 2: the round complexity scales as `1/ε²`. Fixes
/// `(n, k)` and sweeps ε; the normalized round count should stay flat.
///
/// This spec's fixed-seed quick-scale output is pinned bit-for-bit against
/// the pre-spec-API harness by `tests/registry_parity.rs`.
fn f2_spec(scale: Scale) -> ScenarioSpec {
    let mut spec =
        ScenarioSpec::new(ScenarioKind::RumorSpreading { source: 0 }, scale.pick(2_000, 10_000), 3);
    spec.epsilon = 0.25;
    spec.noise = NoiseSpec::Uniform { epsilon: 0.25 };
    spec.trials = scale.pick(5, 30);
    spec.seed = 0xF2;
    spec.sweep.eps = vec![0.1, 0.15, 0.2, 0.25, 0.3, 0.4];
    spec.metrics = vec![
        Metric::Success,
        Metric::Rounds,
        Metric::RoundsNorm,
        Metric::Messages,
    ];
    spec
}

/// F3 — Theorem 2: plurality consensus needs an initial bias of order
/// `√(log n / |S|)`. Sweeps `k ×` bias (multiples of the threshold, with
/// everyone opinionated so `|S| = n`); success jumps to ≈ 1 once the bias
/// comfortably exceeds the threshold.
fn f3_spec(scale: Scale) -> ScenarioSpec {
    let n = scale.pick(2_000, 20_000);
    let threshold = ((n as f64).ln() / n as f64).sqrt();
    let mut spec = ScenarioSpec::new(
        ScenarioKind::PluralityConsensus {
            init: InitSpec::Biased { bias: 0.1 },
        },
        n,
        3,
    );
    spec.epsilon = 0.25;
    spec.noise = NoiseSpec::Uniform { epsilon: 0.25 };
    spec.trials = scale.pick(6, 30);
    spec.seed = 0xF3;
    spec.sweep.k = vec![2, 4];
    spec.sweep.bias = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
        .iter()
        .map(|mult| (mult * threshold).min(0.9))
        .collect();
    spec.metrics = vec![Metric::Success];
    spec
}

/// F7 — Appendix D: for `ε = Θ(n^{−1/4−η})` Stage 1 leaves a bias near or
/// below the Stage 2 requirement and the protocol loses reliability, while
/// constant ε sits far above it. The ε sweep holds both regimes.
fn f7_spec(scale: Scale) -> ScenarioSpec {
    let n = scale.pick(3_000, 20_000);
    let eta = 0.05;
    // Rounded so the eps axis column prints compactly.
    let eps_small = format!("{:.4}", (n as f64).powf(-0.25 - eta))
        .parse::<f64>()
        .expect("rounded eps parses");
    let mut spec = ScenarioSpec::new(ScenarioKind::RumorSpreading { source: 0 }, n, 2);
    spec.epsilon = 0.25;
    spec.noise = NoiseSpec::Uniform { epsilon: 0.25 };
    spec.trials = scale.pick(5, 20);
    spec.seed = 0xF7;
    spec.sweep.eps = vec![0.25, eps_small];
    spec.metrics = vec![Metric::Stage1Bias, Metric::Stage1BiasNorm, Metric::Success];
    spec
}

/// F4 — Proposition 1 (and Lemmas 9–11): the sample-majority gap dominates
/// the analytic lower bound `√(2ℓ/π)·g(δ,ℓ)/4^{k−2}` on a `(k, ℓ, δ)`
/// grid. A pure `gap` spec: `trials` Monte-Carlo samples per cell, exact
/// binomial column for k = 2.
fn f4_spec(scale: Scale) -> ScenarioSpec {
    // The gap is evaluated below the simulation level; n is unused.
    let mut spec = ScenarioSpec::new(
        ScenarioKind::SampleMajorityGap { ell: 25, delta: 0.1 },
        1,
        2,
    );
    spec.trials = scale.pick(40_000, 400_000);
    spec.seed = 0xF4;
    spec.sweep.k = vec![2, 3, 4, 5];
    spec.sweep.ell = vec![9, 25, 51, 101];
    spec.sweep.delta = vec![0.02, 0.05, 0.1, 0.2];
    spec
}

/// F5 — Lemmas 7 and 12: a single seeded execution's full per-phase
/// trajectory — activation fraction, bias, and the Stage 2 per-phase
/// amplification ratio. A rumor spec under `observe.trajectory`.
///
/// This spec's fixed-seed quick-scale output is pinned bit-for-bit against
/// the pre-observation-API harness by `tests/registry_parity.rs`.
fn f5_spec(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        ScenarioKind::RumorSpreading { source: 0 },
        scale.pick(5_000, 50_000),
        3,
    );
    spec.epsilon = 0.25;
    spec.noise = NoiseSpec::Uniform { epsilon: 0.25 };
    spec.trials = 1;
    spec.seed = 0xF5;
    spec.observe = ObserveMode::Trajectory;
    spec
}

/// F8 — Claim 1 and Lemma 3: one phase of pushing under each delivery
/// semantics, comparing received totals, per-node inbox statistics and the
/// Stage 1 adoption rule. A `phase` spec sweeping the delivery process;
/// always agent-level (the per-node moments it measures only exist there),
/// so `--backend` does not apply.
fn f8_spec(scale: Scale) -> ScenarioSpec {
    let n = scale.pick(2_000, 10_000);
    let counts = vec![n * 5 / 10, n * 3 / 10, n * 2 / 10];
    let mut spec = ScenarioSpec::new(
        ScenarioKind::PhaseStats {
            rounds: 10,
            init: InitSpec::Counts(counts),
        },
        n,
        3,
    );
    spec.epsilon = 0.2;
    spec.noise = NoiseSpec::Uniform { epsilon: 0.2 };
    spec.trials = scale.pick(20, 100);
    spec.seed = 0xF8;
    spec.sweep.delivery = DeliverySemantics::ALL.to_vec();
    spec
}

/// T3 — Claims 2–3 and Lemma 4: Stage 1's phase-by-phase activation growth
/// (predicted `β/ε² + 1` per middle phase) and end-of-stage bias
/// (`Ω(√(log n / n))`). A rumor spec under `observe.phases`: per-phase
/// activation/growth/bias aggregated over the trials.
fn t3_spec(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        ScenarioKind::RumorSpreading { source: 0 },
        scale.pick(10_000, 50_000),
        3,
    );
    spec.epsilon = 0.2;
    spec.noise = NoiseSpec::Uniform { epsilon: 0.2 };
    spec.trials = scale.pick(3, 10);
    spec.seed = 0x74;
    spec.observe = ObserveMode::Phases;
    spec
}

/// `topo` — the new scenario family the topology subsystem opens: the same
/// plurality-consensus instance swept across communication topologies × ε
/// at fixed `(n, k)`. On the complete graph the paper's guarantees apply
/// and success is ≈ 1; on sparse graphs (ring, torus, `regular(8)`,
/// `er(p)`) the uniform-push mixing assumption breaks down and the
/// schedule's `O(log n / ε²)` budget stops being sufficient — exactly the
/// gap to the LOCAL-model literature the repo tracks. With the default
/// exact delivery every point runs the agent backend on the materialized
/// graph; [`topo_xl_spec`] re-runs the vertex-transitive families at
/// n = 10⁶–10⁷ under Poissonized delivery on the block-counting backend.
///
/// `n` is a perfect square at both scales so the torus points are
/// feasible; `er(0.01)` gives mean degree ≈ 10 at quick scale
/// (comfortably connected w.h.p.) and ≈ 100 at full scale.
fn topo_spec(scale: Scale) -> ScenarioSpec {
    let n = scale.pick(1_024, 10_000);
    let er_p = 0.01;
    let mut spec = ScenarioSpec::new(
        ScenarioKind::PluralityConsensus {
            init: InitSpec::Biased { bias: 0.2 },
        },
        n,
        3,
    );
    spec.epsilon = 0.25;
    spec.noise = NoiseSpec::Uniform { epsilon: 0.25 };
    spec.trials = scale.pick(3, 10);
    spec.seed = 0x70;
    spec.sweep.eps = scale.pick(vec![0.2, 0.3], vec![0.15, 0.25, 0.35]);
    spec.sweep.topology = vec![
        TopologySpec::Complete,
        TopologySpec::Ring,
        TopologySpec::Torus2D,
        TopologySpec::RandomRegular { degree: 8 },
        TopologySpec::ErdosRenyi { p: er_p },
    ];
    spec.metrics = vec![
        Metric::Success,
        Metric::Consensus,
        Metric::Share,
        Metric::Rounds,
    ];
    spec
}

/// `topoxl` — the `topo` scenario family at population scales only the
/// degree-class block-counting backend reaches: the same biased plurality
/// instance on the certified vertex-transitive families at n = 10⁶ (quick)
/// and n = 10⁷ (`--full`), pinned to `backend = blockcounting` with
/// Poissonized delivery so every phase costs O(k²·C) instead of O(n).
///
/// The torus needs a perfect square, so it appears only in the quick sweep
/// (10⁶ = 1000²; 10⁷ has no integer square root). Erdős–Rényi is outside
/// the backend's certified set and stays in the agent-backed `topo` run.
fn topo_xl_spec(scale: Scale) -> ScenarioSpec {
    let n = scale.pick(1_000_000, 10_000_000);
    let mut spec = ScenarioSpec::new(
        ScenarioKind::PluralityConsensus {
            init: InitSpec::Biased { bias: 0.2 },
        },
        n,
        3,
    );
    spec.epsilon = 0.25;
    spec.noise = NoiseSpec::Uniform { epsilon: 0.25 };
    spec.trials = scale.pick(2, 3);
    spec.seed = 0x71;
    spec.backend = ExecutionBackend::BlockCounting;
    spec.delivery = DeliverySemantics::Poissonized;
    spec.sweep.topology = scale.pick(
        vec![
            TopologySpec::Ring,
            TopologySpec::Torus2D,
            TopologySpec::RandomRegular { degree: 8 },
        ],
        vec![TopologySpec::Ring, TopologySpec::RandomRegular { degree: 8 }],
    );
    spec.metrics = vec![
        Metric::Success,
        Metric::Consensus,
        Metric::Share,
        Metric::Rounds,
    ];
    spec
}

/// `churn` — the temporal-dynamics subsystem's flagship scenario: the same
/// biased plurality instance at n = 10⁶ (10⁷ with `--full`) on the
/// counting backend, swept across steady population-churn regimes from the
/// static paper model (`none`, bit-for-bit the pre-temporal simulator)
/// through balanced turnover to a net-growing and a net-shrinking
/// population. Trajectory observation carries the live `population`
/// column, so the deterministic per-phase population trajectory is
/// visible next to the bias it dilutes: joiners draw opinions uniformly
/// and push the amplification Lemmas 7/12 predict for a *static*
/// population off its curve.
fn churn_spec(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        ScenarioKind::PluralityConsensus {
            init: InitSpec::Biased { bias: 0.2 },
        },
        scale.pick(1_000_000, 10_000_000),
        3,
    );
    spec.epsilon = 0.25;
    spec.noise = NoiseSpec::Uniform { epsilon: 0.25 };
    spec.trials = 1;
    spec.seed = 0xC4;
    spec.backend = ExecutionBackend::Counting;
    spec.observe = ObserveMode::Trajectory;
    spec.sweep.churn = vec![
        ChurnSpec::none(),
        "join(0.05)+leave(0.05)".parse().expect("valid churn"),
        "join(0.04)+leave(0.01)".parse().expect("valid churn"),
        "join(0.01)+leave(0.04)".parse().expect("valid churn"),
    ];
    spec
}

/// `burst` — transient-disruption reconvergence on the counting backend at
/// n = 10⁶ (10⁷ with `--full`): a constant-ε baseline next to a 2-phase
/// noise burst to ε = 0.5 early (while the bias is still fragile) and the
/// same burst later (after the Stage 1 amplification has banked margin),
/// plus a one-shot departure burst removing 30% of the population. The
/// per-phase trajectories show the bias dip and the reconvergence window
/// after each disruption.
fn burst_spec(scale: Scale) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        ScenarioKind::PluralityConsensus {
            init: InitSpec::Biased { bias: 0.2 },
        },
        scale.pick(1_000_000, 10_000_000),
        3,
    );
    spec.epsilon = 0.25;
    spec.noise = NoiseSpec::Uniform { epsilon: 0.25 };
    spec.trials = 1;
    spec.seed = 0xB5;
    spec.backend = ExecutionBackend::Counting;
    spec.observe = ObserveMode::Trajectory;
    spec.sweep.schedule = vec![
        NoiseSchedule::Const,
        "burst(0.5@2:2)".parse().expect("valid schedule"),
        "burst(0.5@5:2)".parse().expect("valid schedule"),
    ];
    spec.sweep.churn = vec![
        ChurnSpec::none(),
        "burst(0.3@3)".parse().expect("valid churn"),
    ];
    spec
}

// ---------------------------------------------------------------------------
// Composite experiments (several spec runs merged into one bespoke table).
// ---------------------------------------------------------------------------

/// Runs a single-point spec and returns its protocol summary.
fn protocol_point(spec: ScenarioSpec) -> Result<TrialSummary, Box<dyn Error>> {
    let report = Runner::new(spec)?.run()?;
    match report.points() {
        [PointResult {
            summary: PointSummary::Protocol(summary),
            ..
        }] => Ok(summary.clone()),
        _ => unreachable!("single-point protocol spec"),
    }
}

/// T1 — headline comparison: the two-stage protocol vs the baseline
/// dynamics on the same instance, same noise, same round budget. Only the
/// protocol reliably reaches exact consensus on the correct opinion.
fn run_t1(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let scale = cli.scale;
    let n = scale.pick(2_000, 10_000);
    let k = 3;
    let eps = 0.25;
    let bias = 0.1;
    let trials = cli.trials_or(scale.pick(5, 20));
    let budget = ProtocolParams::builder(n, k)
        .epsilon(eps)
        .build()?
        .schedule()
        .total_rounds();

    cli.note(&format!(
        "T1: two-stage protocol vs baseline dynamics (n = {n}, k = {k}, eps = {eps}, bias = {bias})"
    ));
    cli.note(&format!(
        "round budget per algorithm: {budget} (the protocol's schedule)\n"
    ));

    let base = |kind: ScenarioKind, seed: u64| {
        let mut spec = ScenarioSpec::new(kind, n, k);
        spec.epsilon = eps;
        spec.noise = NoiseSpec::Uniform { epsilon: eps };
        spec.trials = trials;
        spec.seed = seed;
        apply_cli(&mut spec, cli);
        spec
    };

    let mut table = Table::new(vec![
        "algorithm",
        "exact consensus",
        "correct plurality",
        "mean plurality share",
        "mean rounds",
    ]);

    // The two-stage protocol, as one plurality spec.
    let summary = protocol_point(base(
        ScenarioKind::PluralityConsensus {
            init: InitSpec::Biased { bias },
        },
        0x71,
    ))?;
    table.push_row(vec![
        "two-stage protocol".to_string(),
        summary.consensus.to_string(),
        summary.correct.to_string(),
        format!("{:.3}", summary.share.mean()),
        format!("{:.0}", summary.rounds.mean()),
    ]);

    // The baselines, one dynamics spec each, same budget.
    for rule in RuleSpec::ALL {
        let spec = base(
            ScenarioKind::DynamicsRule {
                rule,
                init: InitSpec::Biased { bias },
                rounds: Some(budget),
            },
            0x72,
        );
        let report = Runner::new(spec)?.run()?;
        let PointSummary::Dynamics(summary) = &report.points()[0].summary else {
            unreachable!("dynamics spec");
        };
        table.push_row(vec![
            rule.to_string(),
            summary.consensus.to_string(),
            summary.correct.to_string(),
            format!("{:.3}", summary.share.mean()),
            format!("{:.0}", summary.rounds.mean()),
        ]);
    }
    cli.emit(&table);
    Ok(())
}

/// T2 — the memory claim of Theorems 1 and 2: `O(log log n + log 1/ε)`
/// bits per node. Two spec sweeps (over n at fixed ε, over ε at fixed n)
/// merged with the theory-scale and ratio columns.
fn run_t2(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let scale = cli.scale;
    let trials = cli.trials_or(scale.pick(3, 10));

    cli.note("T2: per-node memory footprint vs the log log n + log 1/eps scale\n");

    let mut table = Table::new(vec![
        "n",
        "eps",
        "measured bits/node",
        "theory scale (bits)",
        "ratio",
        "success",
    ]);

    let mut push_points = |report: &crate::runner::RunReport| {
        for point in report.points() {
            let PointSummary::Protocol(summary) = &point.summary else {
                unreachable!("rumor spec");
            };
            let scale_bits = bounds::memory_bound_bits(point.point.n, point.point.eps);
            table.push_row(vec![
                point.point.n.to_string(),
                point.point.eps.to_string(),
                format!("{:.1}", summary.memory_bits.mean()),
                format!("{scale_bits:.2}"),
                format!("{:.2}", summary.memory_bits.mean() / scale_bits),
                summary.success.to_string(),
            ]);
        }
    };

    // Sweep n at fixed eps.
    let mut spec = ScenarioSpec::new(ScenarioKind::RumorSpreading { source: 0 }, 2_000, 3);
    spec.epsilon = 0.25;
    spec.noise = NoiseSpec::Uniform { epsilon: 0.25 };
    spec.trials = trials;
    spec.seed = 0x72;
    spec.sweep.n = scale.pick(vec![1_000, 4_000, 16_000], vec![1_000, 4_000, 16_000, 64_000]);
    apply_cli(&mut spec, cli);
    push_points(&Runner::new(spec)?.run()?);

    // Sweep eps at fixed n.
    let mut spec =
        ScenarioSpec::new(ScenarioKind::RumorSpreading { source: 0 }, scale.pick(2_000, 10_000), 3);
    spec.trials = trials;
    spec.seed = 0x73;
    spec.sweep.eps = vec![0.1, 0.2, 0.4];
    apply_cli(&mut spec, cli);
    push_points(&Runner::new(spec)?.run()?);

    cli.emit(&table);
    cli.note("");
    cli.note(
        "(the ratio stays bounded by a modest constant across two orders of magnitude in n,\n\
         which is the O(log log n + log 1/eps) claim at simulable sizes)",
    );
    Ok(())
}

/// A1 — ablations of the protocol's design choices: each variant is the
/// same rumor spec with different `constants.*` overrides (or a schedule ε
/// decoupled from the channel ε), run against the same channel.
fn run_a1(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let scale = cli.scale;
    let n = scale.pick(2_000, 10_000);
    let k = 3;
    let channel_eps = 0.2;
    let trials = cli.trials_or(scale.pick(5, 20));

    cli.note(&format!(
        "A1: protocol ablations (rumor spreading, n = {n}, k = {k}, channel eps = {channel_eps})\n"
    ));

    let mut table = Table::new(vec!["variant", "success", "rounds", "stage-1 bias"]);

    let defaults = plurality_core::ProtocolConstants::default();
    // (label, constant overrides, schedule eps) per ablation variant.
    type Variant = (&'static str, Vec<(&'static str, f64)>, f64);
    let variants: Vec<Variant> = vec![
        ("baseline (default constants)", vec![], channel_eps),
        ("tiny Stage-2 samples (c = 0.25)", vec![("c", 0.25)], channel_eps),
        ("large Stage-2 samples (c = 12)", vec![("c", 12.0)], channel_eps),
        (
            "short Stage-1 final phase (phi = 0.3)",
            vec![("s", 0.1), ("beta", 0.2), ("phi", 0.3)],
            channel_eps,
        ),
        ("schedule assumes eps = 0.4 (channel has 0.2)", vec![], 0.4),
    ];

    for (label, overrides, schedule_eps) in variants {
        let mut spec = ScenarioSpec::new(ScenarioKind::RumorSpreading { source: 0 }, n, k);
        spec.epsilon = schedule_eps;
        // The channel stays at eps = 0.2 even when the schedule assumes
        // more: the noise is pinned explicitly, not derived per point.
        spec.noise = NoiseSpec::Uniform {
            epsilon: channel_eps,
        };
        spec.constants = defaults;
        for (name, value) in overrides {
            assert!(spec.constants.set(name, value), "known constant name");
        }
        spec.trials = trials;
        spec.seed = 0xA1;
        apply_cli(&mut spec, cli);
        let summary = protocol_point(spec)?;
        table.push_row(vec![
            label.to_string(),
            summary.success.to_string(),
            format!("{:.0}", summary.rounds.mean()),
            format!("{:.4}", summary.stage1_bias.mean()),
        ]);
    }
    cli.emit(&table);
    cli.note("");
    cli.note(
        "(the baseline and the larger-sample variant succeed; starving Stage 2 samples, the\n\
         Stage-1 final phase, or the schedule's eps costs reliability — these are the design\n\
         choices the paper's constants protect)",
    );
    Ok(())
}

/// F6 — Section 4: the (ε, δ)-majority-preserving characterization. For
/// every matrix family the LP computes the worst-case margin; the same
/// [`NoiseSpec`] then drives an end-to-end plurality spec, and protocol
/// success should match the LP verdict.
fn run_f6(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let scale = cli.scale;
    let n = scale.pick(1_500, 10_000);
    let trials = cli.trials_or(scale.pick(5, 20));
    let initial_bias = 0.1;

    let matrices: Vec<(&str, NoiseSpec)> = vec![
        ("uniform eps=0.2 (k=3)", NoiseSpec::Uniform { epsilon: 0.2 }),
        ("uniform eps=0.1 (k=3)", NoiseSpec::Uniform { epsilon: 0.1 }),
        (
            "diag-dominant counterexample eps=0.05",
            NoiseSpec::DiagonallyDominant { epsilon: 0.05 },
        ),
        (
            "diag-dominant counterexample eps=0.45",
            NoiseSpec::DiagonallyDominant { epsilon: 0.45 },
        ),
        ("cyclic lambda=0.05 (k=3)", NoiseSpec::Cyclic { lambda: 0.05 }),
        (
            "reset->1 lambda=0.4 (k=3)",
            NoiseSpec::Reset {
                lambda: 0.4,
                target: 1,
            },
        ),
        (
            "band p=0.5 q=[0.24,0.26] (k=3, Eq.17)",
            NoiseSpec::Band {
                p: 0.5,
                q_low: 0.24,
                q_high: 0.26,
            },
        ),
    ];

    cli.note("F6: (eps, delta)-majority-preservation vs end-to-end protocol success");
    cli.note(&format!(
        "(plurality consensus towards opinion 0, n = {n}, initial bias {initial_bias}, {trials} trials)\n"
    ));

    let mut table = Table::new(vec![
        "matrix",
        "LP margin (delta=0.1)",
        "max eps",
        "m.p.?",
        "protocol success",
    ]);

    for (name, noise_spec) in &matrices {
        let matrix = noise_spec.build(3)?;
        let report = matrix.majority_preservation(0, initial_bias)?;
        // End-to-end: provision the schedule for half the matrix's own
        // margin (a practitioner would leave headroom; the clamp keeps the
        // non-m.p. rows, whose margin is 0, on a finite schedule).
        let protocol_eps = (0.5 * report.max_epsilon()).clamp(0.05, 0.4);
        let mut spec = ScenarioSpec::new(
            ScenarioKind::PluralityConsensus {
                init: InitSpec::Biased { bias: initial_bias },
            },
            n,
            3,
        );
        spec.epsilon = protocol_eps;
        spec.noise = noise_spec.clone();
        spec.trials = trials;
        spec.seed = 0xF6;
        apply_cli(&mut spec, cli);
        let summary = protocol_point(spec)?;
        table.push_row(vec![
            name.to_string(),
            format!("{:+.4}", report.worst_margin()),
            format!("{:.3}", report.max_epsilon()),
            report.preserves_majority().to_string(),
            summary.success.to_string(),
        ]);
    }
    cli.emit(&table);
    cli.note("");
    cli.note(
        "paper prediction: rows with 'm.p.? = true' succeed with rate ~1, rows with\n\
         'm.p.? = false' fail (the plurality is destroyed by the channel itself)",
    );
    Ok(())
}

/// T4 — Lemma 17 (Appendix C): removing the parity assumption. Exact
/// binomial evaluation of `gap(ℓ) = gap(ℓ+1) ≤ gap(ℓ+2)` for odd ℓ.
fn run_t4(cli: &Cli) -> Result<(), Box<dyn Error>> {
    cli.note("T4: parity of the Stage 2 sample size (Lemma 17), exact binomial evaluation\n");
    let mut table = Table::new(vec![
        "p1",
        "ell (odd)",
        "gap(ell)",
        "gap(ell+1)",
        "gap(ell+2)",
        "gap(ell)=gap(ell+1)",
        "gap(ell+2)>=gap(ell)",
    ]);
    let mut all_hold = true;
    for &p1 in &[0.5, 0.52, 0.55, 0.6, 0.7, 0.9] {
        for &ell in &[5u64, 11, 21, 51, 101] {
            // Lemma 17 is stated for Pr[maj = 1]; the gap version
            // (Pr[maj=1] − Pr[maj=2]) inherits both relations because the
            // two probabilities sum to 1.
            let g0 = bounds::exact_majority_gap_binary(p1, ell);
            let g1 = bounds::exact_majority_gap_binary(p1, ell + 1);
            let g2 = bounds::exact_majority_gap_binary(p1, ell + 2);
            let equal = (g0 - g1).abs() < 1e-9;
            let monotone = g2 >= g0 - 1e-9;
            all_hold &= equal && monotone;
            table.push_row(vec![
                format!("{p1}"),
                ell.to_string(),
                format!("{g0:.6}"),
                format!("{g1:.6}"),
                format!("{g2:.6}"),
                equal.to_string(),
                monotone.to_string(),
            ]);
        }
    }
    cli.emit(&table);
    cli.note("");
    cli.note(&format!("all Lemma 17 relations hold: {all_hold}"));
    Ok(())
}

/// `scale` — the count-based backend at sizes the agent-level simulator
/// cannot touch: the full two-stage protocol at n = 10⁷ (and n = 10⁸ with
/// `--full`), timed end to end.
fn run_scale(cli: &Cli) -> Result<(), Box<dyn Error>> {
    let scale = cli.scale;
    let sizes: &[usize] = scale.pick(&[1_000_000, 10_000_000][..], &[10_000_000, 100_000_000][..]);
    let eps = 0.25;
    let k = 3;

    let mut table = Table::new(vec![
        "n", "backend", "rounds", "messages", "winner_share", "succeeded", "seconds",
    ]);
    for &n in sizes {
        let noise = NoiseMatrix::uniform(k, eps)?;
        // Poissonized delivery is requested *explicitly*: the counting
        // backend only implements process P, and the semantics-preserving
        // Auto policy no longer silently swaps an exact-delivery run onto
        // it — stating the process here keeps Auto resolving to the
        // O(k²)-per-phase engine these sizes need.
        let params = ProtocolParams::builder(n, k)
            .epsilon(eps)
            .seed(cli.seed_or(7))
            .delivery(DeliverySemantics::Poissonized)
            .build()?;
        let protocol = TwoStageProtocol::new(params, noise)?;
        let resolved = protocol.resolve(cli.backend_or_auto());
        // 40% / 30% / 30%: a plurality but far from an absolute majority.
        let counts = [n * 2 / 5, n * 3 / 10, n - n * 2 / 5 - n * 3 / 10];

        // xlint: allow(determinism-source) — the scale experiment reports wall-clock throughput; timing is the measurement, never an input to the run
        let start = Instant::now();
        let outcome = protocol.run_plurality_consensus_on(cli.backend_or_auto(), &counts)?;
        let elapsed = start.elapsed().as_secs_f64();

        let dist = outcome.final_distribution();
        let share = dist.counts()[0] as f64 / dist.num_nodes() as f64;
        table.push_row(vec![
            format!("{n}"),
            format!("{resolved:?}").to_lowercase(),
            format!("{}", outcome.rounds()),
            format!("{:.3e}", outcome.messages() as f64),
            format!("{share:.4}"),
            format!("{}", outcome.succeeded()),
            format!("{elapsed:.2}"),
        ]);
    }
    cli.emit(&table);
    cli.note(
        "(phases cost O(k^2) draws on the counting backend; the same runs on the\n\
         agent-level backend would push ~n log n messages individually)",
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names: Vec<&str> = all().iter().map(|e| e.name).collect();
        assert_eq!(names.len(), 18, "all 18 experiments are registered");
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18, "names are unique");
        assert!(find("f2").is_some());
        assert!(find("topo").is_some());
        assert!(find("topoxl").is_some());
        assert!(find("churn").is_some());
        assert!(find("burst").is_some());
        assert!(find("scale").is_some());
        assert!(find("f99").is_none());
    }

    #[test]
    fn churn_spec_tracks_the_population_on_the_counting_backend() {
        for scale in [Scale::Quick, Scale::Full] {
            let spec = churn_spec(scale);
            spec.validate().expect("churn spec validates");
            assert_eq!(spec.backend, ExecutionBackend::Counting);
            assert_eq!(spec.observe, ObserveMode::Trajectory);
            // The static paper model anchors the sweep; every other point
            // churns the population, so trajectory rows must carry the
            // live `population` column.
            assert!(spec.sweep.churn[0].is_none());
            assert!(spec.sweep.churn.iter().skip(1).all(|c| c.has_population_churn()));
            assert!(crate::runner::headers(&spec).contains(&"population".to_string()));
        }
        assert_eq!(churn_spec(Scale::Quick).n, 1_000_000);
        assert_eq!(churn_spec(Scale::Full).n, 10_000_000);
    }

    #[test]
    fn burst_spec_sweeps_disruptions_feasibly() {
        for scale in [Scale::Quick, Scale::Full] {
            let spec = burst_spec(scale);
            spec.validate().expect("burst spec validates");
            assert_eq!(spec.backend, ExecutionBackend::Counting);
            // const × none is the undisturbed baseline cell.
            assert!(spec.sweep.schedule[0].is_const());
            assert!(spec.sweep.churn[0].is_none());
            assert_eq!(spec.sweep.num_points(), 6, "3 schedules x 2 churns");
        }
    }

    #[test]
    fn topo_spec_sweeps_topologies_feasibly_at_both_scales() {
        for scale in [Scale::Quick, Scale::Full] {
            let spec = topo_spec(scale);
            spec.validate().expect("topo spec validates");
            assert_eq!(spec.sweep.topology.len(), 5);
            // n is a perfect square so the torus points are buildable.
            let side = (spec.n as f64).sqrt() as usize;
            assert_eq!(side * side, spec.n);
        }
    }

    #[test]
    fn topo_xl_spec_stays_on_the_certified_set_at_both_scales() {
        for scale in [Scale::Quick, Scale::Full] {
            let spec = topo_xl_spec(scale);
            spec.validate().expect("topoxl spec validates");
            assert_eq!(spec.backend, ExecutionBackend::BlockCounting);
            assert_eq!(spec.delivery, DeliverySemantics::Poissonized);
            for topology in &spec.sweep.topology {
                assert!(
                    topology.is_vertex_transitive(),
                    "{topology} is outside the block-counting certified set"
                );
                topology.check(spec.n).expect("feasible at the swept n");
            }
        }
        // The torus rides along only where n is a perfect square.
        assert_eq!(topo_xl_spec(Scale::Quick).sweep.topology.len(), 3);
        assert_eq!(topo_xl_spec(Scale::Full).sweep.topology.len(), 2);
        assert_eq!(topo_xl_spec(Scale::Full).n, 10_000_000);
    }

    #[test]
    fn spec_backed_entries_produce_round_trippable_specs() {
        for experiment in all() {
            let Some(spec) = experiment.spec(Scale::Quick) else {
                continue;
            };
            let text = spec.to_text();
            let parsed = ScenarioSpec::from_text(&text)
                .unwrap_or_else(|e| panic!("{} spec must parse: {e}", experiment.name));
            assert_eq!(parsed, spec, "{} round-trips", experiment.name);
        }
        assert!(find("f2").unwrap().is_spec());
        assert!(!find("t1").unwrap().is_spec());
    }

    #[test]
    fn cli_overrides_apply_to_specs() {
        let mut spec = f2_spec(Scale::Quick);
        let cli = Cli {
            backend: Some(plurality_core::ExecutionBackend::Counting),
            trials: Some(2),
            seed: Some(9),
            ..Cli::default()
        };
        apply_cli(&mut spec, &cli);
        assert_eq!(spec.backend, plurality_core::ExecutionBackend::Counting);
        assert_eq!(spec.trials, 2);
        assert_eq!(spec.seed, 9);
    }
}
