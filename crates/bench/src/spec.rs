//! Declarative scenario specifications — experiment runs as *data*.
//!
//! A [`ScenarioSpec`] describes one complete experiment: what is being run
//! (rumor spreading, plurality consensus, a baseline dynamics rule,
//! Stage 2 alone, the Proposition 1 sample-majority gap, or single-phase
//! delivery statistics), on how many nodes and opinions, under which noise
//! family ([`NoiseSpec`]), delivery process and simulation backend, over
//! which sweep axes, for how many trials, from which base seed — and *how
//! the run is observed*: end-of-run summaries (the default), the full
//! per-phase trajectory (`observe.trajectory = true`), or per-phase
//! aggregates across trials (`observe.phases = true`), optionally ended
//! early by composable `stop.*` conditions instead of the full schedule.
//! The [`Runner`](crate::runner::Runner) executes any spec through the
//! generic protocol/dynamics stack and renders a result table.
//!
//! Specs have a line-oriented `key = value` textual form that round-trips
//! exactly ([`ScenarioSpec::to_text`] / [`ScenarioSpec::from_text`]), so a
//! new experiment is a spec file, not a new binary:
//!
//! ```text
//! # rumor spreading vs noise level
//! scenario = rumor
//! source = 0
//! n = 2000
//! k = 3
//! epsilon = 0.25
//! noise = uniform(0.25)
//! delivery = exact
//! topology = complete
//! backend = auto
//! trials = 5
//! seed = 242
//! sweep.eps = 0.1, 0.15, 0.2, 0.25, 0.3, 0.4
//! metrics = success, rounds, rounds_norm, messages
//! ```
//!
//! ## Topologies
//!
//! The `topology` key selects the communication graph pushes travel along
//! (see [`TopologySpec`]): `complete` (the paper's model; the default),
//! `ring`, `torus` (`n` must be a perfect square), `regular(d)` (a random
//! simple `d`-regular graph) or `er(p)` (Erdős–Rényi `G(n, p)`). The
//! `sweep.topology` axis sweeps it, e.g.
//! `sweep.topology = complete, ring, regular(8)`. Non-complete topologies
//! run on the agent backend with exact (process O) delivery, or — for the
//! vertex-transitive families (`ring`, `torus`, `regular(d)`) — on the
//! degree-class block-counting backend (`backend = blockcounting`) with
//! Poissonized (process P) delivery, where a phase costs O(k²·C)
//! regardless of `n`. Process B and the plain counting backend remain
//! complete-graph notions, and [`validate`](ScenarioSpec::validate)
//! rejects inconsistent combinations (including topology parameters that
//! are infeasible for the swept `n` values).
//!
//! ## Faults
//!
//! The `fault` key injects failures into the delivery path of protocol
//! scenarios (see [`FaultSpec`]): `drop(p)` loses each message with
//! probability `p`, `dup(p)` duplicates it, `delay(p)` defers it to the
//! next phase, `crash(f@s)` silences a fraction `f` of the agents after
//! phase `s`, and `byz(f:j)` makes a fraction `f` always push opinion `j`;
//! families combine with `+`. The `sweep.fault` axis sweeps fault specs,
//! e.g. `sweep.fault = none, drop(0.1), byz(0.1:1)`. Faults are
//! complete-graph-only, and delayed delivery needs the agent backend;
//! [`validate`](ScenarioSpec::validate) rejects inconsistent combinations
//! statically. The `xp campaign` driver runs a spec's fault grid against
//! invariant oracles over many seeds.
//!
//! Run it with `xp run --spec path.spec` (see the `xp` binary), or from
//! code:
//!
//! ```
//! use noisy_bench::runner::Runner;
//! use noisy_bench::spec::ScenarioSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = ScenarioSpec::from_text(
//!     "scenario = rumor\n n = 400\n k = 2\n epsilon = 0.3\n trials = 2\n seed = 7",
//! )?;
//! let report = Runner::new(spec)?.run()?;
//! assert_eq!(report.points().len(), 1);
//! # Ok(())
//! # }
//! ```

use noisy_channel::{NoiseError, NoiseMatrix, NoiseSpec};
use opinion_dynamics::RuleSpec;
use plurality_core::{ExecutionBackend, ProtocolConstants, ProtocolError, StopCondition};
use pushsim::{
    ChurnSpec, ClockSpec, DeliverySemantics, FaultSpec, NoiseSchedule, SimError, TopologySpec,
};
use std::collections::BTreeMap;
use std::fmt;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a 64-bit hash state. Hand-rolled so the
/// digest is stable across releases (unlike `DefaultHasher`, whose
/// algorithm is unspecified) and needs no external crate.
pub(crate) fn fnv1a64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// How the initial opinion configuration of a plurality-style scenario is
/// specified.
#[derive(Debug, Clone, PartialEq)]
pub enum InitSpec {
    /// Everyone is opinionated; opinion 0 leads every rival by `bias`
    /// (as a fraction of `n`), the rest split evenly — see
    /// [`biased_counts`](crate::biased_counts).
    Biased {
        /// The initial bias towards opinion 0, in `[0, 1)`.
        bias: f64,
    },
    /// Explicit per-opinion counts (must have exactly `k` entries).
    Counts(Vec<usize>),
}

/// What kind of execution a scenario performs.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioKind {
    /// Rumor spreading: a single source node holds `source`, everyone else
    /// starts undecided (`scenario = rumor`).
    RumorSpreading {
        /// The source node's opinion index.
        source: usize,
    },
    /// Full two-stage plurality consensus from an initial configuration
    /// (`scenario = plurality`).
    PluralityConsensus {
        /// The initial opinion configuration.
        init: InitSpec,
    },
    /// Only Stage 2 (the amplification stage), from an initial
    /// configuration (`scenario = stage2`).
    Stage2Only {
        /// The initial opinion configuration.
        init: InitSpec,
    },
    /// A baseline opinion dynamics under the same noisy push model
    /// (`scenario = dynamics`).
    DynamicsRule {
        /// Which rule runs.
        rule: RuleSpec,
        /// The initial opinion configuration.
        init: InitSpec,
        /// Round budget; defaults to the two-stage protocol's own schedule
        /// length for the same `(n, k, ε)` when absent.
        rounds: Option<u64>,
    },
    /// The Proposition 1 sample-majority gap, evaluated below the
    /// simulation level (`scenario = gap`): Monte-Carlo estimate of
    /// `Pr[maj = plurality] − Pr[maj = rival]` on a δ-biased received
    /// distribution vs the analytic lower bound, on a `k × ℓ × δ` grid
    /// (`sweep.k`, `sweep.ell`, `sweep.delta`). `trials` is the number of
    /// Monte-Carlo samples per grid cell.
    SampleMajorityGap {
        /// Base sample size ℓ (overridden per point by `sweep.ell`).
        ell: u64,
        /// Base received-distribution bias δ (overridden per point by
        /// `sweep.delta`).
        delta: f64,
    },
    /// Statistics of a single push phase on the agent-level backend
    /// (`scenario = phase`): seed an initial configuration, push for
    /// `rounds` rounds, and report the phase observation's per-node
    /// statistics plus the Stage 1 adoption rule — the Claim 1 / Lemma 3
    /// comparison across delivery processes (`sweep.delivery`). Always
    /// runs agent-level, because the per-node inbox moments it measures
    /// only exist there.
    PhaseStats {
        /// Rounds pushed in the single phase.
        rounds: u64,
        /// The initial opinion configuration.
        init: InitSpec,
    },
}

impl ScenarioKind {
    /// The `scenario = …` value naming this kind.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::RumorSpreading { .. } => "rumor",
            ScenarioKind::PluralityConsensus { .. } => "plurality",
            ScenarioKind::Stage2Only { .. } => "stage2",
            ScenarioKind::DynamicsRule { .. } => "dynamics",
            ScenarioKind::SampleMajorityGap { .. } => "gap",
            ScenarioKind::PhaseStats { .. } => "phase",
        }
    }

    /// The initial-configuration spec, for the kinds that have one.
    pub fn init(&self) -> Option<&InitSpec> {
        match self {
            ScenarioKind::RumorSpreading { .. } | ScenarioKind::SampleMajorityGap { .. } => None,
            ScenarioKind::PluralityConsensus { init }
            | ScenarioKind::Stage2Only { init }
            | ScenarioKind::DynamicsRule { init, .. }
            | ScenarioKind::PhaseStats { init, .. } => Some(init),
        }
    }

    /// True for the kinds that execute full protocol runs (rumor spreading,
    /// plurality consensus, Stage 2 alone).
    pub fn is_protocol(&self) -> bool {
        matches!(
            self,
            ScenarioKind::RumorSpreading { .. }
                | ScenarioKind::PluralityConsensus { .. }
                | ScenarioKind::Stage2Only { .. }
        )
    }

    fn is_dynamics(&self) -> bool {
        matches!(self, ScenarioKind::DynamicsRule { .. })
    }
}

/// The sweep axes of a scenario: each non-empty axis contributes one output
/// column and the grid is the Cartesian product of all non-empty axes, in
/// the fixed order `k`, `n`, `eps`, `bias`, `ell`, `delta`, `delivery`,
/// `topology`, `fault`, `churn`, `schedule`, `clock`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepAxes {
    /// Opinion counts to sweep (`sweep.k = 2, 3, 5`).
    pub k: Vec<usize>,
    /// Network sizes to sweep (`sweep.n = …`).
    pub n: Vec<usize>,
    /// Noise/schedule ε values to sweep (`sweep.eps = …`). Sweeping ε
    /// re-parameterizes the noise family when it has an ε parameter
    /// ([`NoiseSpec::with_epsilon`]); otherwise only the schedule varies.
    pub eps: Vec<f64>,
    /// Initial biases to sweep (`sweep.bias = …`); requires a
    /// [`InitSpec::Biased`] initial configuration.
    pub bias: Vec<f64>,
    /// Sample sizes ℓ to sweep (`sweep.ell = …`); `gap` scenarios only.
    pub ell: Vec<u64>,
    /// Received-distribution biases δ to sweep (`sweep.delta = …`); `gap`
    /// scenarios only.
    pub delta: Vec<f64>,
    /// Delivery processes to sweep (`sweep.delivery = exact, balls,
    /// poisson`); `phase` scenarios only.
    pub delivery: Vec<DeliverySemantics>,
    /// Communication topologies to sweep
    /// (`sweep.topology = complete, ring, regular(8)`); any scenario that
    /// simulates a network (protocol kinds, dynamics, phase).
    pub topology: Vec<TopologySpec>,
    /// Fault specs to sweep (`sweep.fault = none, drop(0.1), byz(0.1:1)`);
    /// protocol scenarios only — the axis of fault-injection campaigns.
    pub fault: Vec<FaultSpec>,
    /// Churn specs to sweep
    /// (`sweep.churn = none, join(0.01)+leave(0.01), burst(0.3@2)`);
    /// protocol scenarios only.
    pub churn: Vec<ChurnSpec>,
    /// Noise schedules to sweep
    /// (`sweep.schedule = const, burst(0.45@2:1), ramp(0.1:0.4@6)`);
    /// protocol scenarios only.
    pub schedule: Vec<NoiseSchedule>,
    /// Clock models to sweep (`sweep.clock = sync, drift(20000)`);
    /// protocol scenarios only, agent backend.
    pub clock: Vec<ClockSpec>,
}

impl SweepAxes {
    /// True if no axis is swept (the run is a single grid point).
    pub fn is_empty(&self) -> bool {
        self.k.is_empty()
            && self.n.is_empty()
            && self.eps.is_empty()
            && self.bias.is_empty()
            && self.ell.is_empty()
            && self.delta.is_empty()
            && self.delivery.is_empty()
            && self.topology.is_empty()
            && self.fault.is_empty()
            && self.churn.is_empty()
            && self.schedule.is_empty()
            && self.clock.is_empty()
    }

    /// Number of grid points (product of non-empty axis lengths).
    pub fn num_points(&self) -> usize {
        self.k.len().max(1)
            * self.n.len().max(1)
            * self.eps.len().max(1)
            * self.bias.len().max(1)
            * self.ell.len().max(1)
            * self.delta.len().max(1)
            * self.delivery.len().max(1)
            * self.topology.len().max(1)
            * self.fault.len().max(1)
            * self.churn.len().max(1)
            * self.schedule.len().max(1)
            * self.clock.len().max(1)
    }
}

/// A result column a scenario can report.
///
/// Protocol scenarios (rumor / plurality / stage2) support every metric;
/// dynamics scenarios support [`Consensus`](Metric::Consensus),
/// [`Correct`](Metric::Correct), [`Share`](Metric::Share) and
/// [`Rounds`](Metric::Rounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Success rate (consensus on the correct opinion), Wilson interval.
    Success,
    /// Mean rounds to completion.
    Rounds,
    /// Mean rounds normalized by the paper's `ln n / ε²` bound.
    RoundsNorm,
    /// Mean messages sent.
    Messages,
    /// Mean bias towards the correct opinion at the end of Stage 1.
    Stage1Bias,
    /// Stage-1 end bias relative to the Stage 2 threshold `√(ln n / n)`.
    Stage1BiasNorm,
    /// Mean per-node memory footprint in bits.
    MemoryBits,
    /// Exact-consensus rate (any opinion), Wilson interval.
    Consensus,
    /// Correct-plurality rate (the plurality opinion wins), Wilson interval.
    Correct,
    /// Mean final share of the plurality opinion.
    Share,
    /// Monte-Carlo sample-majority gap (`gap` scenarios).
    Gap,
    /// The Proposition 1 analytic lower bound (`gap` scenarios).
    GapBound,
    /// Exact binomial gap, defined for `k = 2` (`gap` scenarios).
    GapExact,
    /// Whether the measured gap dominates the bound up to the Monte-Carlo
    /// noise floor (`gap` scenarios).
    GapHolds,
    /// Total messages observed in the phase, ± 95% CI (`phase` scenarios).
    TotalReceived,
    /// Mean messages received per node (`phase` scenarios).
    MeanReceived,
    /// Per-node received-count variance (`phase` scenarios).
    VarReceived,
    /// Fraction of nodes that received at least one message (`phase`
    /// scenarios).
    FracReceived,
    /// Fraction of nodes whose Stage 1 adoption rule (one uniform received
    /// message) would pick opinion 0 (`phase` scenarios).
    Adopt0,
}

impl Metric {
    /// All metrics, in canonical order.
    pub const ALL: [Metric; 19] = [
        Metric::Success,
        Metric::Rounds,
        Metric::RoundsNorm,
        Metric::Messages,
        Metric::Stage1Bias,
        Metric::Stage1BiasNorm,
        Metric::MemoryBits,
        Metric::Consensus,
        Metric::Correct,
        Metric::Share,
        Metric::Gap,
        Metric::GapBound,
        Metric::GapExact,
        Metric::GapHolds,
        Metric::TotalReceived,
        Metric::MeanReceived,
        Metric::VarReceived,
        Metric::FracReceived,
        Metric::Adopt0,
    ];

    /// The spec-file name of the metric (`metrics = success, rounds, …`).
    pub fn spec_name(self) -> &'static str {
        match self {
            Metric::Success => "success",
            Metric::Rounds => "rounds",
            Metric::RoundsNorm => "rounds_norm",
            Metric::Messages => "messages",
            Metric::Stage1Bias => "stage1_bias",
            Metric::Stage1BiasNorm => "stage1_bias_norm",
            Metric::MemoryBits => "memory_bits",
            Metric::Consensus => "consensus",
            Metric::Correct => "correct",
            Metric::Share => "share",
            Metric::Gap => "gap",
            Metric::GapBound => "gap_bound",
            Metric::GapExact => "gap_exact",
            Metric::GapHolds => "gap_holds",
            Metric::TotalReceived => "total_received",
            Metric::MeanReceived => "mean_received",
            Metric::VarReceived => "var_received",
            Metric::FracReceived => "frac_received",
            Metric::Adopt0 => "adopt0",
        }
    }

    /// The table column header of the metric.
    pub fn header(self) -> &'static str {
        match self {
            Metric::Success => "success",
            Metric::Rounds => "rounds",
            Metric::RoundsNorm => "rounds / (ln n / eps^2)",
            Metric::Messages => "messages",
            Metric::Stage1Bias => "stage-1 bias",
            Metric::Stage1BiasNorm => "stage-1 bias / threshold",
            Metric::MemoryBits => "memory bits/node",
            Metric::Consensus => "exact consensus",
            Metric::Correct => "correct plurality",
            Metric::Share => "mean plurality share",
            Metric::Gap => "measured gap",
            Metric::GapBound => "Prop.1 bound",
            Metric::GapExact => "exact (k=2)",
            Metric::GapHolds => "bound holds",
            Metric::TotalReceived => "total received",
            Metric::MeanReceived => "mean recv/node",
            Metric::VarReceived => "var recv/node",
            Metric::FracReceived => "frac >=1 msg",
            Metric::Adopt0 => "adopters of opinion 0",
        }
    }

    /// True if a dynamics scenario can report this metric.
    pub fn supports_dynamics(self) -> bool {
        matches!(
            self,
            Metric::Consensus | Metric::Correct | Metric::Share | Metric::Rounds
        )
    }

    /// True if `kind` can report this metric.
    pub fn supported_by(self, kind: &ScenarioKind) -> bool {
        let gap = matches!(
            self,
            Metric::Gap | Metric::GapBound | Metric::GapExact | Metric::GapHolds
        );
        let phase = matches!(
            self,
            Metric::TotalReceived
                | Metric::MeanReceived
                | Metric::VarReceived
                | Metric::FracReceived
                | Metric::Adopt0
        );
        match kind {
            ScenarioKind::SampleMajorityGap { .. } => gap,
            ScenarioKind::PhaseStats { .. } => phase,
            ScenarioKind::DynamicsRule { .. } => self.supports_dynamics(),
            _ => !gap && !phase,
        }
    }

    fn from_spec_name(s: &str) -> Option<Metric> {
        Metric::ALL.into_iter().find(|m| m.spec_name() == s)
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec_name())
    }
}

/// What a scenario reports per grid point (`observe.*` keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObserveMode {
    /// End-of-run summaries, one row per grid point rendered through the
    /// spec's [`Metric`] columns (the default).
    #[default]
    Summary,
    /// The full per-phase trajectory of every execution
    /// (`observe.trajectory = true`): one row per phase per trial, through
    /// an attached `TrajectoryRecorder` — the shape of experiment F5.
    Trajectory,
    /// Per-phase aggregates across the trials
    /// (`observe.phases = true`): one row per phase index with streaming
    /// mean activation / growth / bias / amplification, through an
    /// attached `OnlineStats` — the shape of experiment T3.
    Phases,
}

/// Early-stop conditions of a scenario (`stop.*` keys), combined
/// disjunctively: the run ends at the first phase boundary where *any* set
/// condition holds. With no key set, runs execute their complete schedule
/// (protocol kinds) or their round budget (dynamics), exactly as before.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StopSpec {
    /// `stop.max_rounds = N` — stop once at least `N` rounds have run.
    pub max_rounds: Option<u64>,
    /// `stop.consensus = true` — stop once every agent agrees.
    pub consensus: bool,
    /// `stop.bias = B` — stop once the bias towards the reference opinion
    /// reaches `B`.
    pub bias: Option<f64>,
    /// `stop.plateau = W, T` — stop once the bias moved by at most `T`
    /// over the last `W` phase transitions.
    pub plateau: Option<(usize, f64)>,
}

impl StopSpec {
    /// True if no condition is set.
    pub fn is_empty(&self) -> bool {
        self.max_rounds.is_none() && !self.consensus && self.bias.is_none() && self.plateau.is_none()
    }

    /// The composed [`StopCondition`]
    /// ([`ScheduleExhausted`](StopCondition::ScheduleExhausted) when no
    /// key is set).
    pub fn to_condition(&self) -> StopCondition {
        let mut conditions = Vec::new();
        if let Some(rounds) = self.max_rounds {
            conditions.push(StopCondition::MaxRounds(rounds));
        }
        if self.consensus {
            conditions.push(StopCondition::ConsensusReached);
        }
        if let Some(bias) = self.bias {
            conditions.push(StopCondition::BiasAtLeast(bias));
        }
        if let Some((window, tolerance)) = self.plateau {
            conditions.push(StopCondition::Plateau { window, tolerance });
        }
        StopCondition::any(conditions)
    }
}

/// A complete, serializable description of one experiment run.
///
/// See the [module docs](self) for the textual form. Field defaults (used
/// by [`ScenarioSpec::new`] and when a key is absent from a spec file):
/// `epsilon = 0.2`, `noise = uniform(epsilon)`, `delivery = exact`,
/// `topology = complete`, `churn = none`, `schedule = const`,
/// `clock = sync`, `backend = auto`, default
/// [`ProtocolConstants`], `trials = 1`, `seed = 0`, no sweep axes,
/// default metrics for the kind, summary observation, no stop conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// What is being run.
    pub kind: ScenarioKind,
    /// Base network size `n` (overridden per point by `sweep.n`).
    pub n: usize,
    /// Base opinion count `k` (overridden per point by `sweep.k`).
    pub k: usize,
    /// Base schedule ε (overridden per point by `sweep.eps`).
    pub epsilon: f64,
    /// The noise family and parameters.
    pub noise: NoiseSpec,
    /// Delivery semantics (process O, B or P).
    pub delivery: DeliverySemantics,
    /// Communication topology (overridden per point by `sweep.topology`).
    pub topology: TopologySpec,
    /// Injected faults (overridden per point by `sweep.fault`); all
    /// disabled by default. Protocol scenarios only.
    pub fault: FaultSpec,
    /// Population/edge churn (overridden per point by `sweep.churn`);
    /// disabled by default. Protocol scenarios only.
    pub churn: ChurnSpec,
    /// Noise schedule `ε(t)` (overridden per point by `sweep.schedule`);
    /// [`NoiseSchedule::Const`] by default. Protocol scenarios only.
    pub schedule: NoiseSchedule,
    /// Clock model (overridden per point by `sweep.clock`);
    /// [`ClockSpec::Sync`] by default. Protocol scenarios only.
    pub clock: ClockSpec,
    /// Requested simulation backend.
    pub backend: ExecutionBackend,
    /// Protocol constants (spec files override individual fields with
    /// `constants.<name> = value`).
    pub constants: ProtocolConstants,
    /// Independent trials per grid point.
    pub trials: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Sweep axes.
    pub sweep: SweepAxes,
    /// Result columns; empty means [`default_metrics`](Self::default_metrics).
    pub metrics: Vec<Metric>,
    /// What is reported per grid point (`observe.*` keys).
    pub observe: ObserveMode,
    /// Early-stop conditions (`stop.*` keys).
    pub stop: StopSpec,
}

impl ScenarioSpec {
    /// A single-point spec for `kind` with all other fields at their
    /// defaults (see the type-level docs).
    pub fn new(kind: ScenarioKind, n: usize, k: usize) -> Self {
        Self {
            kind,
            n,
            k,
            epsilon: 0.2,
            noise: NoiseSpec::Uniform { epsilon: 0.2 },
            delivery: DeliverySemantics::Exact,
            topology: TopologySpec::Complete,
            fault: FaultSpec::default(),
            churn: ChurnSpec::none(),
            schedule: NoiseSchedule::Const,
            clock: ClockSpec::Sync,
            backend: ExecutionBackend::Auto,
            constants: ProtocolConstants::default(),
            trials: 1,
            seed: 0,
            sweep: SweepAxes::default(),
            metrics: Vec::new(),
            observe: ObserveMode::default(),
            stop: StopSpec::default(),
        }
    }

    /// The metric columns used when [`metrics`](Self::metrics) is empty:
    /// `success, rounds, rounds_norm, messages` for protocol scenarios,
    /// `consensus, correct, share, rounds` for dynamics scenarios, and the
    /// kind-specific column sets for `gap` and `phase` scenarios.
    pub fn default_metrics(&self) -> Vec<Metric> {
        match &self.kind {
            ScenarioKind::DynamicsRule { .. } => {
                vec![Metric::Consensus, Metric::Correct, Metric::Share, Metric::Rounds]
            }
            ScenarioKind::SampleMajorityGap { .. } => {
                vec![Metric::Gap, Metric::GapBound, Metric::GapExact, Metric::GapHolds]
            }
            ScenarioKind::PhaseStats { .. } => vec![
                Metric::TotalReceived,
                Metric::MeanReceived,
                Metric::VarReceived,
                Metric::FracReceived,
                Metric::Adopt0,
            ],
            _ => vec![Metric::Success, Metric::Rounds, Metric::RoundsNorm, Metric::Messages],
        }
    }

    /// The metric columns this spec reports (explicit or default).
    pub fn effective_metrics(&self) -> Vec<Metric> {
        if self.metrics.is_empty() {
            self.default_metrics()
        } else {
            self.metrics.clone()
        }
    }

    /// Checks cross-field consistency (axis/kind compatibility, metric
    /// support, non-degenerate trials). Parameter *ranges* are validated by
    /// the underlying builders when the run is materialized.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] describing the first inconsistency.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.trials == 0 {
            return Err(SpecError::Invalid("trials must be at least 1".into()));
        }
        let ks = if self.sweep.k.is_empty() {
            std::slice::from_ref(&self.k)
        } else {
            &self.sweep.k
        };
        if let ScenarioKind::RumorSpreading { source } = self.kind {
            if let Some(&bad) = ks.iter().find(|&&k| source >= k) {
                return Err(SpecError::Invalid(format!(
                    "source opinion {source} is out of range for k = {bad}"
                )));
            }
            if !self.sweep.bias.is_empty() {
                return Err(SpecError::Invalid(
                    "sweep.bias applies only to scenarios with an initial configuration \
                     (plurality, stage2, dynamics)"
                        .into(),
                ));
            }
        }
        if let Some(init) = self.kind.init() {
            match init {
                InitSpec::Biased { bias } => {
                    let biases = if self.sweep.bias.is_empty() {
                        std::slice::from_ref(bias)
                    } else {
                        &self.sweep.bias
                    };
                    if let Some(&bad) =
                        biases.iter().find(|b| !(0.0..1.0).contains(*b) || !b.is_finite())
                    {
                        return Err(SpecError::Invalid(format!(
                            "initial bias {bad} must lie in [0, 1)"
                        )));
                    }
                }
                InitSpec::Counts(counts) => {
                    if !self.sweep.bias.is_empty() {
                        return Err(SpecError::Invalid(
                            "sweep.bias requires a `bias = …` initial configuration, \
                             not explicit counts"
                                .into(),
                        ));
                    }
                    if let Some(&bad) = ks.iter().find(|&&k| counts.len() != k) {
                        return Err(SpecError::Invalid(format!(
                            "counts has {} entries but k = {bad}",
                            counts.len()
                        )));
                    }
                    // The reference opinion of every scenario kind is the
                    // unique plurality; ties would make the correct/share
                    // metrics measure an arbitrary opinion.
                    let max = counts.iter().max().copied().unwrap_or(0);
                    if counts.iter().filter(|&&c| c == max).count() != 1 {
                        return Err(SpecError::Invalid(
                            "explicit counts must have a unique plurality opinion".into(),
                        ));
                    }
                }
            }
        }
        if let Some(bad) = self
            .effective_metrics()
            .into_iter()
            .find(|m| !m.supported_by(&self.kind))
        {
            return Err(SpecError::Invalid(format!(
                "metric {bad} is not reported by {} scenarios",
                self.kind.name()
            )));
        }
        self.validate_kind_specific_axes()?;
        self.validate_topology()?;
        self.validate_fault()?;
        self.validate_temporal()?;
        self.validate_observe_and_stop()?;
        Ok(())
    }

    /// The topology values a run will actually use (base or swept).
    fn effective_topologies(&self) -> &[TopologySpec] {
        if self.sweep.topology.is_empty() {
            std::slice::from_ref(&self.topology)
        } else {
            &self.sweep.topology
        }
    }

    /// Checks topology/kind/delivery/backend consistency and that every
    /// `(topology, n)` grid combination is feasible, so topology errors
    /// surface at spec validation instead of as run-time panics deep in
    /// the trial harness.
    fn validate_topology(&self) -> Result<(), SpecError> {
        let simulates = self.kind.is_protocol()
            || self.kind.is_dynamics()
            || matches!(self.kind, ScenarioKind::PhaseStats { .. });
        if !simulates {
            if !self.topology.is_complete() || !self.sweep.topology.is_empty() {
                return Err(SpecError::Invalid(format!(
                    "topology applies only to scenarios that simulate a network, not {}",
                    self.kind.name()
                )));
            }
            return Ok(());
        }
        let ns = if self.sweep.n.is_empty() {
            std::slice::from_ref(&self.n)
        } else {
            &self.sweep.n
        };
        let deliveries = if self.sweep.delivery.is_empty() {
            std::slice::from_ref(&self.delivery)
        } else {
            &self.sweep.delivery
        };
        for topology in self.effective_topologies() {
            for &n in ns {
                topology.check(n).map_err(|e| SpecError::Invalid(e.to_string()))?;
            }
            if topology.is_complete() {
                continue;
            }
            // Each delivery the grid uses must be admissible on this
            // topology: process O always (agent backend), process P on the
            // vertex-transitive families only (the block-counting
            // backend's certified set), process B never.
            for &delivery in deliveries {
                let admitted = match delivery {
                    DeliverySemantics::Exact => true,
                    DeliverySemantics::Poissonized => topology.is_vertex_transitive(),
                    DeliverySemantics::BallsIntoBins => false,
                };
                if !admitted {
                    return Err(SpecError::Invalid(format!(
                        "topology {topology} does not admit {} delivery — sparse \
                         graphs run process O on the agent backend, and the \
                         vertex-transitive families additionally run process P \
                         on the block-counting backend",
                        delivery.spec_name()
                    )));
                }
            }
            if self.backend == ExecutionBackend::Counting {
                return Err(SpecError::Invalid(format!(
                    "topology {topology} cannot run on the counting backend \
                     (it is statically complete-graph-only); use blockcounting, \
                     agent or auto"
                )));
            }
        }
        Ok(())
    }

    /// The fault values a run will actually use (base or swept).
    fn effective_faults(&self) -> &[FaultSpec] {
        if self.sweep.fault.is_empty() {
            std::slice::from_ref(&self.fault)
        } else {
            &self.sweep.fault
        }
    }

    /// Checks fault/kind/topology/backend consistency statically, so fault
    /// campaigns fail at spec validation instead of per grid cell at run
    /// time.
    fn validate_fault(&self) -> Result<(), SpecError> {
        let enabled = !self.fault.is_none() || !self.sweep.fault.is_empty();
        if !enabled {
            return Ok(());
        }
        if !self.kind.is_protocol() {
            return Err(SpecError::Invalid(format!(
                "fault / sweep.fault apply only to protocol scenarios \
                 (rumor, plurality, stage2), not {}",
                self.kind.name()
            )));
        }
        let ks = if self.sweep.k.is_empty() {
            std::slice::from_ref(&self.k)
        } else {
            &self.sweep.k
        };
        for fault in self.effective_faults() {
            for &k in ks {
                fault
                    .check(k)
                    .map_err(|e| SpecError::Invalid(e.to_string()))?;
            }
            if fault.is_none() {
                continue;
            }
            if let Some(bad) = self.effective_topologies().iter().find(|t| !t.is_complete()) {
                return Err(SpecError::Invalid(format!(
                    "fault {fault} requires the complete graph, not topology {bad}"
                )));
            }
            if self.backend == ExecutionBackend::BlockCounting {
                return Err(SpecError::Invalid(format!(
                    "fault {fault} cannot run on the block-counting backend \
                     (it rejects all faults); use agent, counting or auto"
                )));
            }
            if fault.delay > 0.0 && self.backend == ExecutionBackend::Counting {
                return Err(SpecError::Invalid(format!(
                    "fault {fault} uses delayed delivery, which the counting backend \
                     cannot buffer; use agent or auto"
                )));
            }
            if let (Some(crash), Some(max_rounds)) = (fault.crash, self.stop.max_rounds) {
                // Completing phase s takes at least s + 1 rounds (every
                // phase runs at least one round), so a crash scheduled
                // after phase s can never act before the stop fires.
                if crash.after_phase + 1 >= max_rounds {
                    return Err(SpecError::Invalid(format!(
                        "crash after phase {} can never activate: stop.max_rounds = \
                         {max_rounds} ends the run first",
                        crash.after_phase
                    )));
                }
            }
        }
        Ok(())
    }

    /// The churn values a run will actually use (base or swept).
    fn effective_churns(&self) -> &[ChurnSpec] {
        if self.sweep.churn.is_empty() {
            std::slice::from_ref(&self.churn)
        } else {
            &self.sweep.churn
        }
    }

    /// The noise schedules a run will actually use (base or swept).
    fn effective_schedules(&self) -> &[NoiseSchedule] {
        if self.sweep.schedule.is_empty() {
            std::slice::from_ref(&self.schedule)
        } else {
            &self.sweep.schedule
        }
    }

    /// The clock models a run will actually use (base or swept).
    fn effective_clocks(&self) -> &[ClockSpec] {
        if self.sweep.clock.is_empty() {
            std::slice::from_ref(&self.clock)
        } else {
            &self.sweep.clock
        }
    }

    /// Checks temporal-axis/kind/topology/fault/backend consistency
    /// statically, mirroring the simulator's own admission rules so churn
    /// and schedule campaigns fail at spec validation instead of per grid
    /// cell at run time.
    fn validate_temporal(&self) -> Result<(), SpecError> {
        let enabled = !self.churn.is_none()
            || !self.schedule.is_const()
            || !self.clock.is_sync()
            || !self.sweep.churn.is_empty()
            || !self.sweep.schedule.is_empty()
            || !self.sweep.clock.is_empty();
        if !enabled {
            return Ok(());
        }
        if !self.kind.is_protocol() {
            return Err(SpecError::Invalid(format!(
                "churn / schedule / clock apply only to protocol scenarios \
                 (rumor, plurality, stage2), not {}",
                self.kind.name()
            )));
        }
        let ks = if self.sweep.k.is_empty() {
            std::slice::from_ref(&self.k)
        } else {
            &self.sweep.k
        };
        for churn in self.effective_churns() {
            for &k in ks {
                churn
                    .check(k)
                    .map_err(|e| SpecError::Invalid(e.to_string()))?;
            }
            if churn.has_population_churn() {
                if let Some(bad) = self.effective_topologies().iter().find(|t| !t.is_complete())
                {
                    return Err(SpecError::Invalid(format!(
                        "churn {churn} reshapes the population, which requires the \
                         complete graph, not topology {bad}"
                    )));
                }
                if let Some(bad) = self.effective_faults().iter().find(|f| {
                    f.crash.is_some() || f.byzantine.is_some() || f.delay > 0.0
                }) {
                    return Err(SpecError::Invalid(format!(
                        "churn {churn} cannot compose with the identity-pinning fault \
                         {bad} (crash, byzantine and delay track per-agent identity \
                         that arrivals and departures would scramble)"
                    )));
                }
            }
            if churn.has_edge_churn() {
                if let Some(bad) =
                    self.effective_topologies().iter().find(|t| !t.is_resampleable())
                {
                    return Err(SpecError::Invalid(format!(
                        "churn {churn} rewires edges, which requires a resampleable \
                         random topology (regular(d) or gnp(p)), not {bad}"
                    )));
                }
                if self.delivery != DeliverySemantics::Exact {
                    return Err(SpecError::Invalid(format!(
                        "churn {churn} rewires edges between rounds, which requires \
                         exact delivery (process O), not {}",
                        self.delivery.spec_name()
                    )));
                }
                if matches!(
                    self.backend,
                    ExecutionBackend::Counting | ExecutionBackend::BlockCounting
                ) {
                    return Err(SpecError::Invalid(format!(
                        "churn {churn} rewires edges, which only the agent backend \
                         simulates; use agent or auto"
                    )));
                }
            }
        }
        for schedule in self.effective_schedules() {
            schedule
                .check()
                .map_err(|e| SpecError::Invalid(e.to_string()))?;
            // Every ε the schedule will inject must keep the uniform noise
            // matrix valid (ε ≤ 1 − 1/k) for every k in the grid.
            let epsilons = match *schedule {
                NoiseSchedule::Const => vec![],
                NoiseSchedule::Step { epsilon, .. } | NoiseSchedule::Burst { epsilon, .. } => {
                    vec![epsilon]
                }
                NoiseSchedule::Ramp { start, end, .. } => vec![start, end],
            };
            for eps in epsilons {
                for &k in ks {
                    NoiseMatrix::uniform(k, eps).map_err(|e| {
                        SpecError::Invalid(format!("schedule {schedule}: {e}"))
                    })?;
                }
            }
            if matches!(schedule, NoiseSchedule::Ramp { .. }) && !self.sweep.eps.is_empty() {
                return Err(SpecError::Invalid(format!(
                    "schedule {schedule} overrides ε in every phase, so sweep.eps \
                     would have no observable effect"
                )));
            }
        }
        for clock in self.effective_clocks() {
            clock
                .check()
                .map_err(|e| SpecError::Invalid(e.to_string()))?;
            if clock.is_sync() {
                continue;
            }
            if matches!(
                self.backend,
                ExecutionBackend::Counting | ExecutionBackend::BlockCounting
            ) {
                return Err(SpecError::Invalid(format!(
                    "clock {clock} desynchronizes agents, which the aggregate \
                     counting backends cannot represent; use agent or auto"
                )));
            }
            if self.delivery != DeliverySemantics::Exact {
                if let Some(bad) =
                    self.effective_topologies().iter().find(|t| !t.is_complete())
                {
                    return Err(SpecError::Invalid(format!(
                        "clock {clock} on topology {bad} requires exact delivery \
                         (process O), not {}",
                        self.delivery.spec_name()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Rejects sweep axes on kinds that cannot interpret them.
    fn validate_kind_specific_axes(&self) -> Result<(), SpecError> {
        let sweep = &self.sweep;
        match &self.kind {
            ScenarioKind::SampleMajorityGap { ell, delta } => {
                if !sweep.n.is_empty() || !sweep.eps.is_empty() || !sweep.bias.is_empty() {
                    return Err(SpecError::Invalid(
                        "gap scenarios sweep only k, ell and delta".into(),
                    ));
                }
                if !sweep.delivery.is_empty() {
                    return Err(SpecError::Invalid(
                        "sweep.delivery applies only to phase scenarios".into(),
                    ));
                }
                let ells = if sweep.ell.is_empty() {
                    std::slice::from_ref(ell)
                } else {
                    &sweep.ell
                };
                if ells.contains(&0) {
                    return Err(SpecError::Invalid("ell must be at least 1".into()));
                }
                let deltas = if sweep.delta.is_empty() {
                    std::slice::from_ref(delta)
                } else {
                    &sweep.delta
                };
                if let Some(&bad) =
                    deltas.iter().find(|d| !(0.0..1.0).contains(*d) || !d.is_finite())
                {
                    return Err(SpecError::Invalid(format!(
                        "delta {bad} must lie in [0, 1)"
                    )));
                }
            }
            ScenarioKind::PhaseStats { rounds, .. } => {
                if *rounds == 0 {
                    return Err(SpecError::Invalid(
                        "phase scenarios need at least one round".into(),
                    ));
                }
                if !sweep.ell.is_empty() || !sweep.delta.is_empty() {
                    return Err(SpecError::Invalid(
                        "sweep.ell / sweep.delta apply only to gap scenarios".into(),
                    ));
                }
                if !sweep.k.is_empty() || !sweep.n.is_empty() || !sweep.eps.is_empty()
                    || !sweep.bias.is_empty()
                {
                    return Err(SpecError::Invalid(
                        "phase scenarios sweep only the delivery process".into(),
                    ));
                }
            }
            _ => {
                if !sweep.ell.is_empty() || !sweep.delta.is_empty() {
                    return Err(SpecError::Invalid(
                        "sweep.ell / sweep.delta apply only to gap scenarios".into(),
                    ));
                }
                if !sweep.delivery.is_empty() {
                    return Err(SpecError::Invalid(
                        "sweep.delivery applies only to phase scenarios".into(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Checks the `observe.*` / `stop.*` keys against the kind.
    fn validate_observe_and_stop(&self) -> Result<(), SpecError> {
        let simulates = self.kind.is_protocol() || self.kind.is_dynamics();
        if self.observe != ObserveMode::Summary {
            if !simulates {
                return Err(SpecError::Invalid(format!(
                    "observe.* applies to protocol and dynamics scenarios, not {}",
                    self.kind.name()
                )));
            }
            if !self.metrics.is_empty() {
                return Err(SpecError::Invalid(
                    "metrics and observe.* are mutually exclusive (the observe mode \
                     fixes the columns)"
                        .into(),
                ));
            }
        }
        if !self.stop.is_empty() && !simulates {
            return Err(SpecError::Invalid(format!(
                "stop.* applies to protocol and dynamics scenarios, not {}",
                self.kind.name()
            )));
        }
        if let Some(rounds) = self.stop.max_rounds {
            if rounds == 0 {
                return Err(SpecError::Invalid("stop.max_rounds must be at least 1".into()));
            }
        }
        if let Some(bias) = self.stop.bias {
            if !bias.is_finite() || !(0.0..=1.0).contains(&bias) || bias == 0.0 {
                return Err(SpecError::Invalid(format!(
                    "stop.bias {bias} must lie in (0, 1]"
                )));
            }
        }
        if let Some((window, tolerance)) = self.stop.plateau {
            if window == 0 {
                return Err(SpecError::Invalid(
                    "stop.plateau needs a window of at least 1 phase".into(),
                ));
            }
            if !tolerance.is_finite() || tolerance < 0.0 {
                return Err(SpecError::Invalid(format!(
                    "stop.plateau tolerance {tolerance} must be finite and non-negative"
                )));
            }
        }
        Ok(())
    }

    /// Renders the spec in its canonical `key = value` textual form.
    ///
    /// The output parses back to an equal spec with
    /// [`from_text`](Self::from_text).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut line = |k: &str, v: String| {
            let _ = writeln!(out, "{k} = {v}");
        };
        line("scenario", self.kind.name().to_string());
        match &self.kind {
            ScenarioKind::RumorSpreading { source } => line("source", source.to_string()),
            ScenarioKind::PluralityConsensus { init } | ScenarioKind::Stage2Only { init } => {
                init_lines(&mut line, init);
            }
            ScenarioKind::DynamicsRule { rule, init, rounds } => {
                line("rule", rule.to_string());
                init_lines(&mut line, init);
                if let Some(rounds) = rounds {
                    line("rounds", rounds.to_string());
                }
            }
            ScenarioKind::SampleMajorityGap { ell, delta } => {
                line("ell", ell.to_string());
                line("delta", delta.to_string());
            }
            ScenarioKind::PhaseStats { rounds, init } => {
                init_lines(&mut line, init);
                line("rounds", rounds.to_string());
            }
        }
        line("n", self.n.to_string());
        line("k", self.k.to_string());
        line("epsilon", self.epsilon.to_string());
        line("noise", self.noise.to_string());
        line("delivery", self.delivery.spec_name().to_string());
        line("topology", self.topology.to_string());
        if !self.fault.is_none() {
            line("fault", self.fault.to_string());
        }
        if !self.churn.is_none() {
            line("churn", self.churn.to_string());
        }
        if !self.schedule.is_const() {
            line("schedule", self.schedule.to_string());
        }
        if !self.clock.is_sync() {
            line("clock", self.clock.to_string());
        }
        line("backend", backend_name(self.backend).to_string());
        line("trials", self.trials.to_string());
        line("seed", self.seed.to_string());
        let defaults = ProtocolConstants::default();
        for name in ProtocolConstants::FIELD_NAMES {
            let value = self.constants.get(name).expect("listed field");
            if value != defaults.get(name).expect("listed field") {
                line(&format!("constants.{name}"), value.to_string());
            }
        }
        if !self.sweep.k.is_empty() {
            line("sweep.k", join(&self.sweep.k));
        }
        if !self.sweep.n.is_empty() {
            line("sweep.n", join(&self.sweep.n));
        }
        if !self.sweep.eps.is_empty() {
            line("sweep.eps", join(&self.sweep.eps));
        }
        if !self.sweep.bias.is_empty() {
            line("sweep.bias", join(&self.sweep.bias));
        }
        if !self.sweep.ell.is_empty() {
            line("sweep.ell", join(&self.sweep.ell));
        }
        if !self.sweep.delta.is_empty() {
            line("sweep.delta", join(&self.sweep.delta));
        }
        if !self.sweep.delivery.is_empty() {
            let names: Vec<&str> = self.sweep.delivery.iter().map(|d| d.spec_name()).collect();
            line("sweep.delivery", names.join(", "));
        }
        if !self.sweep.topology.is_empty() {
            line("sweep.topology", join(&self.sweep.topology));
        }
        if !self.sweep.fault.is_empty() {
            line("sweep.fault", join(&self.sweep.fault));
        }
        if !self.sweep.churn.is_empty() {
            line("sweep.churn", join(&self.sweep.churn));
        }
        if !self.sweep.schedule.is_empty() {
            line("sweep.schedule", join(&self.sweep.schedule));
        }
        if !self.sweep.clock.is_empty() {
            line("sweep.clock", join(&self.sweep.clock));
        }
        if !self.metrics.is_empty() {
            line("metrics", join(&self.metrics));
        }
        match self.observe {
            ObserveMode::Summary => {}
            ObserveMode::Trajectory => line("observe.trajectory", "true".to_string()),
            ObserveMode::Phases => line("observe.phases", "true".to_string()),
        }
        if let Some(rounds) = self.stop.max_rounds {
            line("stop.max_rounds", rounds.to_string());
        }
        if self.stop.consensus {
            line("stop.consensus", "true".to_string());
        }
        if let Some(bias) = self.stop.bias {
            line("stop.bias", bias.to_string());
        }
        if let Some((window, tolerance)) = self.stop.plateau {
            line("stop.plateau", format!("{window}, {tolerance}"));
        }
        out
    }

    /// A stable 64-bit content digest of the spec: FNV-1a over the
    /// canonical [`to_text`](Self::to_text) form followed by the seed's
    /// little-endian bytes.
    ///
    /// Because the canonical text round-trips
    /// (`from_text(to_text(s)) == s`), any two specs with the same
    /// canonical form — regardless of comments, key order, or numeric
    /// formatting in the submitted text — share a digest, which makes
    /// it usable as a content-addressed cache key for results and for
    /// campaign/replay bookkeeping. The hash function is fixed: the
    /// digest is stable across processes, platforms, and releases that
    /// do not change the canonical form itself.
    pub fn canonical_digest(&self) -> u64 {
        let mut hash = fnv1a64(FNV_OFFSET_BASIS, self.to_text().as_bytes());
        hash = fnv1a64(hash, &self.seed.to_le_bytes());
        hash
    }

    /// Parses a spec from its textual form. `#` starts a comment; blank
    /// lines are ignored; keys may appear in any order but at most once.
    ///
    /// # Errors
    ///
    /// [`SpecError::Parse`] (with the 1-based line number) for syntax
    /// errors, unknown or duplicate keys, and malformed values;
    /// [`SpecError::Invalid`] if the assembled spec fails
    /// [`validate`](Self::validate).
    pub fn from_text(text: &str) -> Result<Self, SpecError> {
        let mut map: BTreeMap<&str, (usize, &str)> = BTreeMap::new();
        for (index, raw) in text.lines().enumerate() {
            let lineno = index + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| SpecError::Parse {
                line: lineno,
                message: format!("expected `key = value`, got {line:?}"),
            })?;
            let (key, value) = (key.trim(), value.trim());
            if map.insert(key, (lineno, value)).is_some() {
                return Err(SpecError::Parse {
                    line: lineno,
                    message: format!("duplicate key {key:?}"),
                });
            }
        }

        let scenario = take_required(&mut map, "scenario")?;
        let kind = match scenario.1 {
            "rumor" => ScenarioKind::RumorSpreading {
                source: take_parsed(&mut map, "source")?.unwrap_or(0),
            },
            "plurality" => ScenarioKind::PluralityConsensus {
                init: take_init(&mut map)?,
            },
            "stage2" => ScenarioKind::Stage2Only {
                init: take_init(&mut map)?,
            },
            "dynamics" => {
                let (line, rule) = take_required(&mut map, "rule")?;
                let rule: RuleSpec = rule
                    .parse()
                    .map_err(|message: String| SpecError::Parse { line, message })?;
                ScenarioKind::DynamicsRule {
                    rule,
                    init: take_init(&mut map)?,
                    rounds: take_parsed(&mut map, "rounds")?,
                }
            }
            "gap" => ScenarioKind::SampleMajorityGap {
                ell: take_parsed(&mut map, "ell")?.unwrap_or(25),
                delta: take_parsed(&mut map, "delta")?.unwrap_or(0.1),
            },
            "phase" => ScenarioKind::PhaseStats {
                rounds: take_parsed(&mut map, "rounds")?
                    .ok_or(SpecError::Missing { key: "rounds" })?,
                init: take_init(&mut map)?,
            },
            other => {
                return Err(SpecError::Parse {
                    line: scenario.0,
                    message: format!(
                        "unknown scenario {other:?} (expected rumor, plurality, stage2, \
                         dynamics, gap or phase)"
                    ),
                })
            }
        };

        let n = take_parsed(&mut map, "n")?.ok_or(SpecError::Missing { key: "n" })?;
        let k = take_parsed(&mut map, "k")?.ok_or(SpecError::Missing { key: "k" })?;
        let epsilon: f64 = take_parsed(&mut map, "epsilon")?.unwrap_or(0.2);
        let noise = match map.remove("noise") {
            Some((line, value)) => value
                .parse::<NoiseSpec>()
                .map_err(|e| SpecError::Parse {
                    line,
                    message: e.to_string(),
                })?,
            None => NoiseSpec::Uniform { epsilon },
        };
        let delivery = take_from_str(&mut map, "delivery")?.unwrap_or(DeliverySemantics::Exact);
        let topology = take_from_str(&mut map, "topology")?.unwrap_or(TopologySpec::Complete);
        let fault = take_from_str(&mut map, "fault")?.unwrap_or_default();
        let churn = take_from_str(&mut map, "churn")?.unwrap_or_else(ChurnSpec::none);
        let schedule = take_from_str(&mut map, "schedule")?.unwrap_or(NoiseSchedule::Const);
        let clock = take_from_str(&mut map, "clock")?.unwrap_or(ClockSpec::Sync);
        let backend = take_from_str(&mut map, "backend")?.unwrap_or(ExecutionBackend::Auto);

        let mut constants = ProtocolConstants::default();
        for name in ProtocolConstants::FIELD_NAMES {
            let key = format!("constants.{name}");
            if let Some((line, value)) = map.remove(key.as_str()) {
                let value: f64 = value.parse().map_err(|_| SpecError::Parse {
                    line,
                    message: format!("malformed number {value:?} for {key}"),
                })?;
                assert!(constants.set(name, value), "FIELD_NAMES entries are settable");
            }
        }

        let trials = take_parsed(&mut map, "trials")?.unwrap_or(1);
        let seed = take_parsed(&mut map, "seed")?.unwrap_or(0);
        let sweep = SweepAxes {
            k: take_list(&mut map, "sweep.k")?,
            n: take_list(&mut map, "sweep.n")?,
            eps: take_list(&mut map, "sweep.eps")?,
            bias: take_list(&mut map, "sweep.bias")?,
            ell: take_list(&mut map, "sweep.ell")?,
            delta: take_list(&mut map, "sweep.delta")?,
            delivery: take_list(&mut map, "sweep.delivery")?,
            topology: take_list(&mut map, "sweep.topology")?,
            fault: take_list(&mut map, "sweep.fault")?,
            churn: take_list(&mut map, "sweep.churn")?,
            schedule: take_list(&mut map, "sweep.schedule")?,
            clock: take_list(&mut map, "sweep.clock")?,
        };
        let observe = {
            let trajectory: bool =
                take_parsed(&mut map, "observe.trajectory")?.unwrap_or(false);
            let phases: bool = take_parsed(&mut map, "observe.phases")?.unwrap_or(false);
            match (trajectory, phases) {
                (true, true) => {
                    return Err(SpecError::Invalid(
                        "choose one of observe.trajectory and observe.phases".into(),
                    ))
                }
                (true, false) => ObserveMode::Trajectory,
                (false, true) => ObserveMode::Phases,
                (false, false) => ObserveMode::Summary,
            }
        };
        let stop = StopSpec {
            max_rounds: take_parsed(&mut map, "stop.max_rounds")?,
            consensus: take_parsed(&mut map, "stop.consensus")?.unwrap_or(false),
            bias: take_parsed(&mut map, "stop.bias")?,
            plateau: match map.remove("stop.plateau") {
                None => None,
                Some((line, value)) => {
                    let parts: Vec<&str> =
                        value.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
                    let parsed = match parts.as_slice() {
                        [window, tolerance] => window
                            .parse::<usize>()
                            .ok()
                            .zip(tolerance.parse::<f64>().ok()),
                        _ => None,
                    };
                    Some(parsed.ok_or_else(|| SpecError::Parse {
                        line,
                        message: format!(
                            "stop.plateau expects `window, tolerance`, got {value:?}"
                        ),
                    })?)
                }
            },
        };
        let metrics = match map.remove("metrics") {
            None => Vec::new(),
            Some((line, value)) => value
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| {
                    Metric::from_spec_name(s).ok_or_else(|| SpecError::Parse {
                        line,
                        message: format!("unknown metric {s:?}"),
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
        };

        if let Some((&key, &(line, _))) = map.iter().next() {
            return Err(SpecError::Parse {
                line,
                message: format!("unknown key {key:?} for scenario {scenario}", scenario = kind.name()),
            });
        }

        let spec = ScenarioSpec {
            kind,
            n,
            k,
            epsilon,
            noise,
            delivery,
            topology,
            fault,
            churn,
            schedule,
            clock,
            backend,
            constants,
            trials,
            seed,
            sweep,
            metrics,
            observe,
            stop,
        };
        spec.validate()?;
        Ok(spec)
    }
}

fn init_lines(line: &mut impl FnMut(&str, String), init: &InitSpec) {
    match init {
        InitSpec::Biased { bias } => line("bias", bias.to_string()),
        InitSpec::Counts(counts) => line("counts", join(counts)),
    }
}

fn backend_name(backend: ExecutionBackend) -> &'static str {
    match backend {
        ExecutionBackend::Agent => "agent",
        ExecutionBackend::Counting => "counting",
        ExecutionBackend::BlockCounting => "blockcounting",
        ExecutionBackend::Auto => "auto",
    }
}

fn join<T: fmt::Display>(values: &[T]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

type RawMap<'a> = BTreeMap<&'a str, (usize, &'a str)>;

fn take_required<'a>(map: &mut RawMap<'a>, key: &'static str) -> Result<(usize, &'a str), SpecError> {
    map.remove(key).ok_or(SpecError::Missing { key })
}

fn take_parsed<T: std::str::FromStr>(
    map: &mut RawMap<'_>,
    key: &'static str,
) -> Result<Option<T>, SpecError> {
    match map.remove(key) {
        None => Ok(None),
        Some((line, value)) => value.parse().map(Some).map_err(|_| SpecError::Parse {
            line,
            message: format!("malformed value {value:?} for {key}"),
        }),
    }
}

fn take_from_str<T>(map: &mut RawMap<'_>, key: &'static str) -> Result<Option<T>, SpecError>
where
    T: std::str::FromStr<Err = String>,
{
    match map.remove(key) {
        None => Ok(None),
        Some((line, value)) => value
            .parse()
            .map(Some)
            .map_err(|message| SpecError::Parse { line, message }),
    }
}

fn take_list<T: std::str::FromStr>(
    map: &mut RawMap<'_>,
    key: &'static str,
) -> Result<Vec<T>, SpecError> {
    match map.remove(key) {
        None => Ok(Vec::new()),
        Some((line, value)) => value
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse().map_err(|_| SpecError::Parse {
                    line,
                    message: format!("malformed list entry {s:?} for {key}"),
                })
            })
            .collect(),
    }
}

fn take_init(map: &mut RawMap<'_>) -> Result<InitSpec, SpecError> {
    let bias: Option<f64> = take_parsed(map, "bias")?;
    let counts: Vec<usize> = take_list(map, "counts")?;
    match (bias, counts.is_empty()) {
        (Some(_), false) => Err(SpecError::Invalid(
            "give either `bias = …` or `counts = …`, not both".into(),
        )),
        (Some(bias), true) => Ok(InitSpec::Biased { bias }),
        (None, false) => Ok(InitSpec::Counts(counts)),
        (None, true) => Err(SpecError::Missing { key: "bias (or counts)" }),
    }
}

/// Errors from parsing, validating or executing a [`ScenarioSpec`].
#[derive(Debug)]
pub enum SpecError {
    /// A line of the textual form could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A required key is absent.
    Missing {
        /// The missing key.
        key: &'static str,
    },
    /// The spec is syntactically fine but internally inconsistent.
    Invalid(String),
    /// Protocol parameter validation failed when materializing a run.
    Protocol(ProtocolError),
    /// Noise-matrix construction failed when materializing a run.
    Noise(NoiseError),
    /// Simulator configuration failed when materializing a run.
    Sim(SimError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse { line, message } => write!(f, "spec line {line}: {message}"),
            SpecError::Missing { key } => write!(f, "spec is missing required key `{key}`"),
            SpecError::Invalid(message) => write!(f, "invalid spec: {message}"),
            SpecError::Protocol(e) => write!(f, "invalid protocol parameters: {e}"),
            SpecError::Noise(e) => write!(f, "invalid noise matrix: {e}"),
            SpecError::Sim(e) => write!(f, "invalid simulation config: {e}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::Protocol(e) => Some(e),
            SpecError::Noise(e) => Some(e),
            SpecError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for SpecError {
    fn from(e: ProtocolError) -> Self {
        SpecError::Protocol(e)
    }
}

impl From<NoiseError> for SpecError {
    fn from(e: NoiseError) -> Self {
        SpecError::Noise(e)
    }
}

impl From<SimError> for SpecError {
    fn from(e: SimError) -> Self {
        SpecError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rumor_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(ScenarioKind::RumorSpreading { source: 1 }, 2_000, 3);
        spec.epsilon = 0.25;
        spec.noise = NoiseSpec::Uniform { epsilon: 0.25 };
        spec.trials = 5;
        spec.seed = 242;
        spec.sweep.eps = vec![0.1, 0.15, 0.2];
        spec.metrics = vec![Metric::Success, Metric::Rounds];
        spec
    }

    #[test]
    fn canonical_text_round_trips() {
        let spec = rumor_spec();
        let text = spec.to_text();
        let parsed = ScenarioSpec::from_text(&text).expect("canonical text parses");
        assert_eq!(parsed, spec);
    }

    #[test]
    fn dynamics_and_counts_round_trip() {
        let mut spec = ScenarioSpec::new(
            ScenarioKind::DynamicsRule {
                rule: RuleSpec::HMajority { h: 15 },
                init: InitSpec::Counts(vec![500, 300, 200]),
                rounds: Some(1_200),
            },
            1_000,
            3,
        );
        spec.constants.c = 12.0;
        spec.delivery = DeliverySemantics::Poissonized;
        spec.backend = ExecutionBackend::Counting;
        let parsed = ScenarioSpec::from_text(&spec.to_text()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn topology_keys_round_trip_and_validate() {
        // The base key and the sweep axis round-trip through the text form.
        let mut spec = rumor_spec();
        spec.topology = TopologySpec::RandomRegular { degree: 8 };
        let parsed = ScenarioSpec::from_text(&spec.to_text()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.topology, TopologySpec::RandomRegular { degree: 8 });

        let mut spec = rumor_spec();
        spec.sweep.topology = vec![
            TopologySpec::Complete,
            TopologySpec::Ring,
            TopologySpec::ErdosRenyi { p: 0.01 },
        ];
        let parsed = ScenarioSpec::from_text(&spec.to_text()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.sweep.num_points(), 9, "3 eps x 3 topologies");

        // The key parses from a raw file too.
        let spec = ScenarioSpec::from_text(
            "scenario = rumor\nn = 100\nk = 2\ntopology = ring\n",
        )
        .unwrap();
        assert_eq!(spec.topology, TopologySpec::Ring);
    }

    #[test]
    fn topology_validation_rejects_inconsistent_combinations() {
        // Non-complete topologies never admit process B…
        let mut spec = rumor_spec();
        spec.topology = TopologySpec::Ring;
        spec.delivery = DeliverySemantics::BallsIntoBins;
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        // …admit process P only on the vertex-transitive families (ring is
        // fine — that is the block-counting backend's home turf — but
        // Erdős–Rényi is not)…
        let mut spec = rumor_spec();
        spec.topology = TopologySpec::Ring;
        spec.delivery = DeliverySemantics::Poissonized;
        assert!(spec.validate().is_ok());
        let mut spec = rumor_spec();
        spec.topology = TopologySpec::ErdosRenyi { p: 0.01 };
        spec.delivery = DeliverySemantics::Poissonized;
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        // …and cannot be forced onto the counting backend.
        let mut spec = rumor_spec();
        spec.sweep.topology = vec![TopologySpec::Ring];
        spec.backend = ExecutionBackend::Counting;
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        // Infeasible (topology, n) grid combinations fail statically.
        let mut spec = rumor_spec();
        spec.topology = TopologySpec::Torus2D;
        spec.n = 1_000; // not a perfect square
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        let mut spec = rumor_spec();
        spec.sweep.n = vec![1_024, 1_000];
        spec.sweep.topology = vec![TopologySpec::Torus2D];
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        // Below-simulation kinds have no network to shape.
        let mut spec = ScenarioSpec::new(
            ScenarioKind::SampleMajorityGap { ell: 25, delta: 0.1 },
            100,
            2,
        );
        spec.topology = TopologySpec::Ring;
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        // A feasible sparse spec passes.
        let mut spec = rumor_spec();
        spec.sweep.topology = vec![TopologySpec::Ring, TopologySpec::RandomRegular { degree: 4 }];
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn fault_keys_round_trip_and_validate() {
        // The base key and the sweep axis round-trip through the text form.
        let mut spec = rumor_spec();
        spec.fault = "drop(0.1)+byz(0.05:0)".parse().unwrap();
        let parsed = ScenarioSpec::from_text(&spec.to_text()).unwrap();
        assert_eq!(parsed, spec);

        let mut spec = rumor_spec();
        spec.sweep.fault = vec![
            FaultSpec::none(),
            "drop(0.2)".parse().unwrap(),
            "crash(0.1@2)".parse().unwrap(),
        ];
        let parsed = ScenarioSpec::from_text(&spec.to_text()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.sweep.num_points(), 9, "3 eps x 3 faults");

        // The key parses from a raw file too.
        let spec = ScenarioSpec::from_text(
            "scenario = rumor\nn = 100\nk = 2\nfault = dup(0.3)\n",
        )
        .unwrap();
        assert_eq!(spec.fault, "dup(0.3)".parse().unwrap());
    }

    #[test]
    fn fault_validation_rejects_inconsistent_combinations() {
        // Faults are protocol-only…
        let mut spec = ScenarioSpec::new(
            ScenarioKind::SampleMajorityGap { ell: 25, delta: 0.1 },
            100,
            2,
        );
        spec.fault = "drop(0.1)".parse().unwrap();
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        // …and complete-graph-only.
        let mut spec = rumor_spec();
        spec.fault = "drop(0.1)".parse().unwrap();
        spec.sweep.topology = vec![TopologySpec::Ring];
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        // A Byzantine opinion must exist at every swept k.
        let mut spec = rumor_spec();
        spec.fault = "byz(0.1:2)".parse().unwrap();
        spec.sweep.k = vec![3, 2];
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        spec.sweep.k = vec![3, 4];
        assert!(spec.validate().is_ok());
        // Delayed delivery cannot be forced onto the counting backend.
        let mut spec = rumor_spec();
        spec.fault = "delay(0.2)".parse().unwrap();
        spec.backend = ExecutionBackend::Counting;
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        spec.backend = ExecutionBackend::Auto;
        assert!(spec.validate().is_ok());
        // The block-counting backend rejects every enabled fault family.
        let mut spec = rumor_spec();
        spec.fault = "drop(0.1)".parse().unwrap();
        spec.backend = ExecutionBackend::BlockCounting;
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        // A crash the stop condition cuts off is dead weight.
        let mut spec = rumor_spec();
        spec.fault = "crash(0.1@50)".parse().unwrap();
        spec.stop.max_rounds = Some(20);
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        spec.stop.max_rounds = Some(2_000);
        assert!(spec.validate().is_ok());
        // An all-disabled spec composes with everything.
        let mut spec = rumor_spec();
        spec.fault = FaultSpec::none();
        spec.sweep.topology = vec![TopologySpec::Ring];
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn temporal_keys_round_trip_and_validate() {
        // The base keys and the sweep axes round-trip through the text form.
        let mut spec = rumor_spec();
        spec.churn = "join(0.01:1)+leave(0.02)+burst(0.3@2)".parse().unwrap();
        spec.schedule = "burst(0.45@2:1)".parse().unwrap();
        spec.clock = "drift(20000)".parse().unwrap();
        spec.backend = ExecutionBackend::Agent;
        let parsed = ScenarioSpec::from_text(&spec.to_text()).unwrap();
        assert_eq!(parsed, spec);

        let mut spec = rumor_spec();
        spec.sweep.churn = vec![
            ChurnSpec::none(),
            "join(0.05)+leave(0.05)".parse().unwrap(),
            "burst(0.3@2)".parse().unwrap(),
        ];
        spec.sweep.schedule =
            vec![NoiseSchedule::Const, "step(0.4@2)".parse().unwrap()];
        let parsed = ScenarioSpec::from_text(&spec.to_text()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.sweep.num_points(), 18, "3 eps x 3 churns x 2 schedules");

        // The keys parse from a raw file too.
        let spec = ScenarioSpec::from_text(
            "scenario = rumor\nn = 100\nk = 2\nchurn = leave(0.1)\nschedule = ramp(0.1:0.4@6)\n",
        )
        .unwrap();
        assert_eq!(spec.churn, "leave(0.1)".parse().unwrap());
        assert_eq!(spec.schedule, "ramp(0.1:0.4@6)".parse().unwrap());

        // Default temporal keys leave the canonical text untouched, so
        // every pre-temporal spec digest is preserved.
        let spec = rumor_spec();
        assert!(!spec.to_text().contains("churn"));
        assert!(!spec.to_text().contains("schedule"));
        assert!(!spec.to_text().contains("clock"));
    }

    #[test]
    fn temporal_validation_rejects_inconsistent_combinations() {
        // Temporal axes are protocol-only…
        let mut spec = ScenarioSpec::new(
            ScenarioKind::SampleMajorityGap { ell: 25, delta: 0.1 },
            100,
            2,
        );
        spec.churn = "leave(0.1)".parse().unwrap();
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        // …population churn is complete-graph-only…
        let mut spec = rumor_spec();
        spec.churn = "join(0.1)".parse().unwrap();
        spec.sweep.topology = vec![TopologySpec::Ring];
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        // …and cannot compose with identity-pinning faults.
        let mut spec = rumor_spec();
        spec.churn = "join(0.1)".parse().unwrap();
        spec.sweep.fault = vec!["crash(0.1@2)".parse().unwrap()];
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        spec.sweep.fault = vec!["drop(0.1)".parse().unwrap()];
        assert!(spec.validate().is_ok());
        // Edge churn needs a resampleable random topology…
        let mut spec = rumor_spec();
        spec.churn = "rewire(0.2)".parse().unwrap();
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        spec.topology = TopologySpec::RandomRegular { degree: 8 };
        assert!(spec.validate().is_ok());
        // …and only the agent backend simulates it.
        spec.backend = ExecutionBackend::BlockCounting;
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        // A join opinion must exist at every swept k.
        let mut spec = rumor_spec();
        spec.churn = "join(0.1:2)".parse().unwrap();
        spec.sweep.k = vec![3, 2];
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        spec.sweep.k = vec![3, 4];
        assert!(spec.validate().is_ok());
        // Scheduled ε values must keep the uniform matrix valid at every
        // swept k (ε ≤ 1 − 1/k: 0.6 is fine for k = 3, not for k = 2).
        let mut spec = rumor_spec();
        spec.schedule = "step(0.6@2)".parse().unwrap();
        spec.sweep.k = vec![3, 2];
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        spec.sweep.k = vec![3, 4];
        assert!(spec.validate().is_ok());
        // A ramp overrides ε in every phase, so sweeping eps is dead weight.
        let mut spec = rumor_spec();
        spec.schedule = "ramp(0.1:0.4@6)".parse().unwrap();
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        spec.sweep.eps = Vec::new();
        assert!(spec.validate().is_ok());
        // Drifting clocks cannot be forced onto the counting backends.
        let mut spec = rumor_spec();
        spec.clock = "drift(20000)".parse().unwrap();
        spec.backend = ExecutionBackend::Counting;
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
        spec.backend = ExecutionBackend::Auto;
        assert!(spec.validate().is_ok());
        // An all-default temporal spec composes with everything.
        let mut spec = rumor_spec();
        spec.sweep.topology = vec![TopologySpec::Ring];
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn comments_blank_lines_and_order_are_tolerated() {
        let spec = ScenarioSpec::from_text(
            "# a comment\n\n  k = 2\nscenario = plurality  # trailing comment\n bias = 0.1\n n = 500\n",
        )
        .unwrap();
        assert_eq!(spec.k, 2);
        assert_eq!(spec.n, 500);
        assert_eq!(
            spec.kind,
            ScenarioKind::PluralityConsensus {
                init: InitSpec::Biased { bias: 0.1 }
            }
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = ScenarioSpec::from_text("scenario = rumor\nn = 100\nk = 2\nwobble = 3\n")
            .unwrap_err();
        match err {
            SpecError::Parse { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("wobble"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
        let err = ScenarioSpec::from_text("scenario = rumor\nn = 100\nn = 200\nk = 2\n").unwrap_err();
        assert!(matches!(err, SpecError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn missing_required_keys_are_reported() {
        assert!(matches!(
            ScenarioSpec::from_text("scenario = rumor\nk = 2\n"),
            Err(SpecError::Missing { key: "n" })
        ));
        assert!(matches!(
            ScenarioSpec::from_text("scenario = plurality\nn = 100\nk = 2\n"),
            Err(SpecError::Missing { .. })
        ));
        assert!(matches!(
            ScenarioSpec::from_text("scenario = dynamics\nn = 100\nk = 2\nbias = 0.1\n"),
            Err(SpecError::Missing { key: "rule" })
        ));
    }

    #[test]
    fn validation_rejects_inconsistent_specs() {
        let mut spec = rumor_spec();
        spec.sweep.bias = vec![0.1];
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));

        let mut spec = ScenarioSpec::new(ScenarioKind::RumorSpreading { source: 5 }, 100, 3);
        assert!(spec.validate().is_err());
        spec.kind = ScenarioKind::RumorSpreading { source: 2 };
        assert!(spec.validate().is_ok());

        let mut spec = ScenarioSpec::new(
            ScenarioKind::PluralityConsensus {
                init: InitSpec::Counts(vec![60, 40]),
            },
            100,
            3,
        );
        assert!(spec.validate().is_err(), "2 counts for k = 3");
        spec.k = 2;
        assert!(spec.validate().is_ok());
        spec.kind = ScenarioKind::PluralityConsensus {
            init: InitSpec::Counts(vec![50, 50]),
        };
        assert!(spec.validate().is_err(), "tied counts have no unique plurality");

        let mut spec = ScenarioSpec::new(
            ScenarioKind::DynamicsRule {
                rule: RuleSpec::Voter,
                init: InitSpec::Biased { bias: 0.1 },
                rounds: None,
            },
            100,
            2,
        );
        spec.metrics = vec![Metric::Stage1Bias];
        assert!(spec.validate().is_err(), "stage-1 bias is protocol-only");
        spec.metrics = vec![Metric::Share, Metric::Rounds];
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn default_metrics_depend_on_the_kind() {
        let rumor = ScenarioSpec::new(ScenarioKind::RumorSpreading { source: 0 }, 100, 2);
        assert_eq!(
            rumor.default_metrics(),
            vec![Metric::Success, Metric::Rounds, Metric::RoundsNorm, Metric::Messages]
        );
        let dynamics = ScenarioSpec::new(
            ScenarioKind::DynamicsRule {
                rule: RuleSpec::Voter,
                init: InitSpec::Biased { bias: 0.1 },
                rounds: None,
            },
            100,
            2,
        );
        assert_eq!(
            dynamics.default_metrics(),
            vec![Metric::Consensus, Metric::Correct, Metric::Share, Metric::Rounds]
        );
    }

    #[test]
    fn noise_defaults_to_uniform_at_the_schedule_epsilon() {
        let spec =
            ScenarioSpec::from_text("scenario = rumor\nn = 100\nk = 2\nepsilon = 0.3\n").unwrap();
        assert_eq!(spec.noise, NoiseSpec::Uniform { epsilon: 0.3 });
    }

    #[test]
    fn sweep_axes_count_points() {
        let mut axes = SweepAxes::default();
        assert!(axes.is_empty());
        assert_eq!(axes.num_points(), 1);
        axes.k = vec![2, 3];
        axes.eps = vec![0.1, 0.2, 0.3];
        assert_eq!(axes.num_points(), 6);
    }
}
