//! The production [`JobHandler`] wiring `noisy-serve` to the [`Runner`].
//!
//! [`SpecService`] turns an HTTP submission body (canonical spec text,
//! see [`ScenarioSpec::from_text`]) into a planned run. Whole runs are
//! content-addressed by [`ScenarioSpec::canonical_digest`]; protocol
//! scenarios observed as summaries additionally decompose into
//! **sweep cells** — one single-point spec per grid point — each with
//! its own salted digest, so a sweep sharing cells with anything the
//! server has already computed reuses those rows instead of
//! recomputing them.
//!
//! Cell reuse is restricted to `kind.is_protocol()` +
//! [`ObserveMode::Summary`] because only there is a point's result
//! independent of its grid position: protocol trials are seeded from
//! `spec.seed` alone (`run_trials` reseeds per trial), whereas the
//! dynamics/gap/phase paths derive per-`(point.index, trial)` seeds,
//! making their rows position-dependent and unsafe to share between
//! sweeps. For eligible specs the decomposed output is byte-identical
//! to [`Runner::run_streamed`] — `tests` below and the end-to-end
//! suite assert this.

use crate::runner::{self, GridPoint, Runner};
use crate::spec::{InitSpec, ObserveMode, ScenarioKind, ScenarioSpec, SweepAxes};
use gossip_analysis::table::json_line;
use noisy_serve::handler::{JobHandler, Plan};
use std::io::Write;

/// XORed into cell digests so a single-point spec's cell key can never
/// collide with its own whole-run digest (the server stores response
/// bodies under whole-run keys and row sets under cell keys).
pub const CELL_KEY_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Whether `spec`'s grid points may be cached and reused individually
/// (position-independent results; see the module docs).
pub fn cell_reuse_eligible(spec: &ScenarioSpec) -> bool {
    spec.kind.is_protocol() && spec.observe == ObserveMode::Summary
}

/// The standalone single-point spec equivalent to running `spec` at
/// `point`: sweeps cleared, base values pinned to the point's, the
/// noise family re-parameterized exactly as the runner's ε-sweep path
/// does, and the effective metrics materialized so the cell's canonical
/// text (and hence its digest) is independent of whether the parent
/// spelled its metrics out.
pub fn cell_spec(spec: &ScenarioSpec, point: &GridPoint) -> ScenarioSpec {
    let mut cell = spec.clone();
    cell.sweep = SweepAxes::default();
    cell.k = point.k;
    cell.n = point.n;
    cell.epsilon = point.eps;
    if !spec.sweep.eps.is_empty() {
        cell.noise = spec.noise.with_epsilon(point.eps);
    }
    cell.delivery = point.delivery;
    cell.topology = point.topology;
    cell.fault = point.fault;
    cell.metrics = spec.effective_metrics();
    if let Some(bias) = point.bias {
        if let ScenarioKind::PluralityConsensus { init } | ScenarioKind::Stage2Only { init } =
            &mut cell.kind
        {
            if let InitSpec::Biased { bias: base } = init {
                *base = bias;
            }
        }
    }
    cell
}

struct PlannedCell {
    point: GridPoint,
    spec: ScenarioSpec,
    digest: u64,
}

/// A parsed, validated submission: the spec plus its (possibly empty)
/// sweep-cell decomposition.
pub struct PlannedRun {
    spec: ScenarioSpec,
    headers: Vec<String>,
    cells: Vec<PlannedCell>,
}

impl PlannedRun {
    /// The submitted spec.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }
}

/// The scenario service's job handler: parses spec text, runs it
/// through the [`Runner`], and exposes the sweep-cell decomposition to
/// the server's content-addressed cache.
#[derive(Debug, Default, Clone, Copy)]
pub struct SpecService;

impl JobHandler for SpecService {
    type Job = PlannedRun;

    fn plan(&self, body: &str) -> Result<Plan<PlannedRun>, String> {
        let spec = ScenarioSpec::from_text(body).map_err(|e| e.to_string())?;
        let digest = spec.canonical_digest();
        let headers = runner::headers(&spec);
        let cells: Vec<PlannedCell> = if cell_reuse_eligible(&spec) {
            runner::expand_grid(&spec)
                .iter()
                .map(|point| {
                    let cell = cell_spec(&spec, point);
                    let digest = cell.canonical_digest() ^ CELL_KEY_SALT;
                    PlannedCell { point: *point, spec: cell, digest }
                })
                .collect()
        } else {
            Vec::new()
        };
        let keys =
            (!cells.is_empty()).then(|| cells.iter().map(|c| c.digest).collect::<Vec<_>>());
        Ok(Plan { job: PlannedRun { spec, headers, cells }, digest, cells: keys })
    }

    fn run(&self, job: &PlannedRun, sink: &mut dyn Write) -> Result<(), String> {
        let runner = Runner::new(job.spec.clone()).map_err(|e| e.to_string())?;
        runner.run_streamed(sink).map_err(|e| e.to_string())?;
        Ok(())
    }

    fn run_cell(&self, job: &PlannedRun, index: usize) -> Result<Vec<Vec<String>>, String> {
        let cell = job
            .cells
            .get(index)
            .ok_or_else(|| format!("plan has no cell {index}"))?;
        let report = Runner::new(cell.spec.clone())
            .and_then(|r| r.run())
            .map_err(|e| e.to_string())?;
        let point = report
            .points()
            .first()
            .ok_or_else(|| "cell run produced no points".to_string())?;
        // The cell spec sweeps nothing, so these rows carry no axis
        // prefix: they are pure data cells, valid in any sweep whose
        // grid contains this cell.
        Ok(runner::point_rows(&cell.spec, point))
    }

    fn render_cell(&self, job: &PlannedRun, index: usize, rows: &[Vec<String>]) -> String {
        let prefix = runner::axis_cells(&job.spec, &job.cells[index].point);
        let mut out = String::new();
        for row in rows {
            let mut cells = prefix.clone();
            cells.extend(row.iter().cloned());
            out.push_str(&json_line(&job.headers, &cells));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_spec() -> ScenarioSpec {
        ScenarioSpec::from_text(
            "scenario = rumor\nsource = 0\nn = 300\nk = 2\nepsilon = 0.3\n\
             noise = uniform(0.3)\ntrials = 2\nseed = 11\nsweep.eps = 0.25, 0.3, 0.35\n",
        )
        .expect("valid spec")
    }

    fn run_decomposed(plan: &Plan<PlannedRun>) -> String {
        let svc = SpecService;
        let mut out = String::new();
        for index in 0..plan.job.cells.len() {
            let rows = svc.run_cell(&plan.job, index).expect("cell runs");
            out.push_str(&svc.render_cell(&plan.job, index, &rows));
        }
        out
    }

    #[test]
    fn decomposed_cells_reproduce_streamed_bytes() {
        let svc = SpecService;
        let plan = svc.plan(&sweep_spec().to_text()).expect("plan");
        assert!(plan.cells.is_some(), "protocol summary sweeps decompose");
        let mut streamed = Vec::new();
        svc.run(&plan.job, &mut streamed).expect("whole run");
        assert_eq!(run_decomposed(&plan), String::from_utf8(streamed).unwrap());
    }

    #[test]
    fn single_point_submission_shares_cell_keys_with_sweeps() {
        let svc = SpecService;
        let sweep = svc.plan(&sweep_spec().to_text()).expect("plan");
        let mut single = sweep_spec();
        single.sweep = SweepAxes::default();
        single.epsilon = 0.35;
        single.noise = single.noise.with_epsilon(0.35);
        let single_plan = svc.plan(&single.to_text()).expect("plan");
        let sweep_keys = sweep.cells.expect("sweep cells");
        let single_keys = single_plan.cells.expect("single cell");
        assert_eq!(single_keys.len(), 1);
        assert_eq!(sweep_keys[2], single_keys[0]);
        // And the shared rows really are interchangeable.
        let sweep_rows = svc.run_cell(&sweep.job, 2).expect("sweep cell");
        let single_rows = svc.run_cell(&single_plan.job, 0).expect("single cell");
        assert_eq!(sweep_rows, single_rows);
    }

    #[test]
    fn cell_keys_never_equal_whole_run_digests() {
        let svc = SpecService;
        let mut spec = sweep_spec();
        spec.sweep = SweepAxes::default();
        let plan = svc.plan(&spec.to_text()).expect("plan");
        let keys = plan.cells.expect("single-point protocol specs still decompose");
        assert_ne!(keys[0], plan.digest);
    }

    #[test]
    fn non_summary_and_non_protocol_specs_do_not_decompose() {
        let svc = SpecService;
        let mut traj = sweep_spec();
        traj.observe = ObserveMode::Trajectory;
        traj.sweep = SweepAxes::default();
        assert!(svc.plan(&traj.to_text()).expect("plan").cells.is_none());
        let gap = ScenarioSpec::from_text(
            "scenario = gap\nn = 100\nk = 3\nell = 9\ndelta = 0.1\ntrials = 50\nseed = 3\n",
        )
        .expect("valid gap spec");
        assert!(svc.plan(&gap.to_text()).expect("plan").cells.is_none());
    }

    #[test]
    fn plan_rejects_malformed_text_with_message() {
        let err = match SpecService.plan("scenario = nope\n") {
            Ok(_) => panic!("planning malformed text must fail"),
            Err(err) => err,
        };
        assert!(err.contains("line"), "error should carry context: {err}");
    }
}
