//! # noisy-bench
//!
//! The experiment harness of the reproduction, built around a declarative
//! scenario API:
//!
//! * [`spec`] — [`ScenarioSpec`], a serializable description of a complete
//!   experiment run (scenario kind, noise family, delivery process,
//!   backend, sweep axes, trials, seed) with a round-trippable `key =
//!   value` text format;
//! * [`runner`] — the [`Runner`] that executes any spec through the
//!   backend-generic protocol/dynamics stack and reports structured
//!   summaries;
//! * [`registry`] — every figure/table experiment of DESIGN.md §5,
//!   registered by name (`f1`–`f8`, `t1`–`t4`, `a1`, `scale`);
//! * the `xp` binary — the single driver: `xp list`, `xp run f2 --json`,
//!   `xp run --spec path.spec`, `xp show f2`.
//!
//! Run an experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p noisy-bench --bin xp -- list
//! cargo run --release -p noisy-bench --bin xp -- run f1
//! cargo run --release -p noisy-bench --bin xp -- run t1 --full --json
//! cargo run --release -p noisy-bench --bin xp -- run --spec examples/specs/rumor_vs_eps.spec
//! ```
//!
//! Every run accepts an optional `--full` flag: without it a reduced
//! ("quick") grid is used so the whole suite finishes in minutes on a
//! laptop; with it the grid matches the sizes quoted in EXPERIMENTS.md.
//! `benches/` holds the Criterion micro-benchmarks that document the
//! simulator's cost model.

#![forbid(unsafe_code)]

pub mod campaign;
pub mod registry;
pub mod runner;
pub mod service;
pub mod spec;

pub use runner::Runner;
pub use spec::ScenarioSpec;

use gossip_analysis::ci::WilsonInterval;
use gossip_analysis::stats::SampleStats;
use gossip_analysis::table::Table;
use noisy_channel::NoiseMatrix;
use plurality_core::{ExecutionBackend, Outcome, ProtocolParams, TwoStageProtocol};
use pushsim::Opinion;

/// Scale of an experiment run: a reduced grid for quick checks or the full
/// grid documented in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced grid (default): finishes in roughly a minute per experiment.
    Quick,
    /// Full grid: the sizes used for the numbers recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Parses the scale from the process arguments (`--full` selects
    /// [`Scale::Full`]).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Chooses between the quick and full value of a parameter.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// The command-line options shared by every experiment run:
///
/// * `--full` — run the full grid instead of the reduced quick grid;
/// * `--json` — emit result tables as JSON lines
///   ([`Table::to_json_lines`]) instead of aligned text, so figure
///   pipelines are scriptable;
/// * `--stream` — emit result rows as JSON lines *while the run
///   progresses* (per completed sweep point; per finished phase for
///   trajectory specs) instead of one table at the end. Spec-backed
///   experiments and `--spec` files stream natively; composite
///   experiments fall back to JSON-at-the-end;
/// * `--backend agent|counting|blockcounting|auto` (or `--backend=…`) — which simulation
///   backend protocol runs execute on (when absent, the spec/experiment
///   default applies — usually [`ExecutionBackend::Auto`], which resolves
///   per run from the calibrated cost model; see
///   [`ExecutionBackend::resolve`]);
/// * `--trials N` — override the number of trials/repetitions per cell;
/// * `--seed S` — override the base RNG seed.
///
/// Parse failures never silently fall back to defaults: [`from_args`]
/// prints the offending argument plus the [`USAGE`](Self::USAGE) synopsis
/// and exits, and `--help` prints the synopsis.
///
/// [`from_args`]: Self::from_args
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cli {
    /// Quick vs full grid (`--full`).
    pub scale: Scale,
    /// Emit tables as JSON lines (`--json`).
    pub json: bool,
    /// Stream result rows as JSON lines while the run progresses
    /// (`--stream`).
    pub stream: bool,
    /// Backend override for protocol runs (`--backend …`); `None` keeps
    /// the experiment's own default.
    pub backend: Option<ExecutionBackend>,
    /// Trials-per-cell override (`--trials N`).
    pub trials: Option<u64>,
    /// Base-seed override (`--seed S`).
    pub seed: Option<u64>,
}

impl Default for Cli {
    /// Quick grid, text output, no overrides.
    fn default() -> Self {
        Cli {
            scale: Scale::Quick,
            json: false,
            stream: false,
            backend: None,
            trials: None,
            seed: None,
        }
    }
}

/// A rejected command line: the offending argument plus the full usage
/// synopsis (rendered by `Display`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    message: String,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "error: {}\n\n{}", self.message, Cli::USAGE)
    }
}

impl std::error::Error for CliError {}

impl Cli {
    /// The flag synopsis shared by every experiment run (printed on
    /// `--help` and on every parse failure).
    pub const USAGE: &'static str = "\
options:
  --full               run the full experiment grid (default: reduced quick grid)
  --json               emit result tables as JSON lines
  --stream             stream result rows as JSON lines while the run progresses
  --backend <agent|counting|blockcounting|auto>
                       simulation backend for protocol runs
  --trials <N>         override the number of trials/repetitions per cell
  --seed <S>           override the base RNG seed
  --help, -h           print this synopsis";

    /// Parses the options from the process arguments. Prints the usage
    /// synopsis and exits on `--help`/`-h` (status 0) or on a parse
    /// failure (status 2).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", Self::USAGE);
            std::process::exit(0);
        }
        match Self::try_parse_from(args) {
            Ok(cli) => cli,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// Parses the options from an explicit argument list.
    ///
    /// # Panics
    ///
    /// Panics with the [`CliError`] message (offending argument + usage
    /// synopsis) on any parse failure — a mistyped flag must not silently
    /// run the experiment with default options. Binaries should prefer
    /// [`from_args`](Self::from_args), which exits cleanly instead.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        Self::try_parse_from(args).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Parses the options from an explicit argument list.
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] naming the offending argument (unrecognized
    /// flag, missing or malformed value) together with the usage synopsis.
    pub fn try_parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, CliError> {
        let mut cli = Cli::default();
        let err = |message: String| CliError { message };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            // `--flag value` and `--flag=value` are both accepted.
            let (flag, mut inline) = match arg.split_once('=') {
                Some((flag, value)) => (flag.to_string(), Some(value.to_string())),
                None => (arg, None),
            };
            let mut value = |args: &mut I::IntoIter| -> Result<String, CliError> {
                inline
                    .take()
                    .or_else(|| args.next())
                    .ok_or_else(|| err(format!("{flag} requires a value")))
            };
            match flag.as_str() {
                "--full" => cli.scale = Scale::Full,
                "--json" => cli.json = true,
                "--stream" => cli.stream = true,
                "--backend" => {
                    let value = value(&mut args)?;
                    cli.backend = Some(value.parse().map_err(|e| {
                        err(format!("invalid --backend value {value:?}: {e}"))
                    })?);
                }
                "--trials" => {
                    let value = value(&mut args)?;
                    let trials: u64 = value
                        .parse()
                        .map_err(|_| err(format!("invalid --trials value {value:?}")))?;
                    if trials == 0 {
                        return Err(err("--trials must be at least 1".into()));
                    }
                    cli.trials = Some(trials);
                }
                "--seed" => {
                    let value = value(&mut args)?;
                    cli.seed = Some(
                        value
                            .parse()
                            .map_err(|_| err(format!("invalid --seed value {value:?}")))?,
                    );
                }
                other => return Err(err(format!("unrecognized argument {other:?}"))),
            }
            if let Some(extra) = inline {
                return Err(err(format!("{flag} does not take a value (got {extra:?})")));
            }
        }
        Ok(cli)
    }

    /// The backend override, or [`ExecutionBackend::Auto`] when none was
    /// given (the default for experiments that run the protocol directly).
    pub fn backend_or_auto(&self) -> ExecutionBackend {
        self.backend.unwrap_or(ExecutionBackend::Auto)
    }

    /// The trials override, or `default` when none was given.
    pub fn trials_or(&self, default: u64) -> u64 {
        self.trials.unwrap_or(default)
    }

    /// The seed override, or `default` when none was given.
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// Prints `table` in the selected output format: aligned text by
    /// default, JSON lines under `--json` (and under `--stream`, for the
    /// composite experiments that cannot stream incrementally).
    pub fn emit(&self, table: &Table) {
        let mut stdout = std::io::stdout().lock();
        self.emit_to(table, &mut stdout).expect("write to stdout");
    }

    /// Writes `table` in the selected output format to `out` — the
    /// sink-generic form of [`emit`](Self::emit), shared by the CLI
    /// (stdout) and the scenario service (HTTP response buffers).
    pub fn emit_to(&self, table: &Table, out: &mut dyn std::io::Write) -> std::io::Result<()> {
        if self.json || self.stream {
            write!(out, "{}", table.to_json_lines())
        } else {
            write!(out, "{table}")
        }
    }

    /// Prints a free-form context line — suppressed under `--json` and
    /// `--stream` so the output stream stays machine-parseable.
    pub fn note(&self, line: &str) {
        let mut stdout = std::io::stdout().lock();
        self.note_to(line, &mut stdout).expect("write to stdout");
    }

    /// Writes a context line to `out` (same `--json`/`--stream`
    /// suppression as [`note`](Self::note)).
    pub fn note_to(&self, line: &str, out: &mut dyn std::io::Write) -> std::io::Result<()> {
        if !self.json && !self.stream {
            writeln!(out, "{line}")
        } else {
            Ok(())
        }
    }
}

/// Aggregated result of repeating one protocol configuration over several
/// seeds.
#[derive(Debug, Clone)]
pub struct TrialSummary {
    /// Success-rate estimate (consensus on the correct opinion).
    pub success: WilsonInterval,
    /// Exact-consensus rate (consensus on *any* opinion).
    pub consensus: WilsonInterval,
    /// Rate at which the correct opinion ended up the plurality (whether or
    /// not exact consensus was reached).
    pub correct: WilsonInterval,
    /// Final share of the correct opinion over the trials.
    pub share: SampleStats,
    /// Rounds-to-completion statistics over the trials.
    pub rounds: SampleStats,
    /// Messages-sent statistics over the trials.
    pub messages: SampleStats,
    /// Per-node memory (bits) statistics over the trials.
    pub memory_bits: SampleStats,
    /// Bias towards the correct opinion at the end of Stage 1.
    pub stage1_bias: SampleStats,
}

/// Runs `trials` independent rumor-spreading executions (source opinion 0)
/// and aggregates them.
///
/// # Panics
///
/// Panics if the parameters and noise matrix are incompatible — experiment
/// binaries construct both from the same `k`, so a mismatch is a programming
/// error in the harness itself.
pub fn rumor_spreading_trials(
    params: &ProtocolParams,
    noise: &NoiseMatrix,
    trials: u64,
) -> TrialSummary {
    rumor_spreading_trials_on(ExecutionBackend::Agent, params, noise, trials)
}

/// [`rumor_spreading_trials`] on an explicit [`ExecutionBackend`]
/// ([`ExecutionBackend::Auto`] resolves per run from the cost model).
///
/// # Panics
///
/// Same as [`rumor_spreading_trials`].
pub fn rumor_spreading_trials_on(
    backend: ExecutionBackend,
    params: &ProtocolParams,
    noise: &NoiseMatrix,
    trials: u64,
) -> TrialSummary {
    rumor_spreading_trials_from(backend, params, noise, Opinion::new(0), trials)
}

/// [`rumor_spreading_trials_on`] from an arbitrary source opinion.
///
/// # Panics
///
/// Panics if `source` is out of range for the parameters, or on a
/// params/noise mismatch (both are harness programming errors).
pub fn rumor_spreading_trials_from(
    backend: ExecutionBackend,
    params: &ProtocolParams,
    noise: &NoiseMatrix,
    source: Opinion,
    trials: u64,
) -> TrialSummary {
    run_trials(params, noise, trials, |protocol| {
        protocol
            .run_rumor_spreading_on(backend, source)
            .expect("harness supplies a valid source opinion")
    })
}

/// Runs `trials` independent plurality-consensus executions from the given
/// initial counts and aggregates them.
///
/// # Panics
///
/// Panics if the counts are invalid for the parameters (harness programming
/// error).
pub fn plurality_trials(
    params: &ProtocolParams,
    noise: &NoiseMatrix,
    initial_counts: &[usize],
    trials: u64,
) -> TrialSummary {
    plurality_trials_on(ExecutionBackend::Agent, params, noise, initial_counts, trials)
}

/// [`plurality_trials`] on an explicit [`ExecutionBackend`]
/// ([`ExecutionBackend::Auto`] resolves per run from the cost model).
///
/// # Panics
///
/// Same as [`plurality_trials`].
pub fn plurality_trials_on(
    backend: ExecutionBackend,
    params: &ProtocolParams,
    noise: &NoiseMatrix,
    initial_counts: &[usize],
    trials: u64,
) -> TrialSummary {
    run_trials(params, noise, trials, |protocol| {
        protocol
            .run_plurality_consensus_on(backend, initial_counts)
            .expect("harness supplies valid counts")
    })
}

/// Runs `trials` independent Stage-2-only executions (the amplification
/// stage alone, from the given initial counts) and aggregates them.
///
/// # Panics
///
/// Panics if the counts are invalid for the parameters (harness programming
/// error).
pub fn stage2_only_trials_on(
    backend: ExecutionBackend,
    params: &ProtocolParams,
    noise: &NoiseMatrix,
    initial_counts: &[usize],
    trials: u64,
) -> TrialSummary {
    run_trials(params, noise, trials, |protocol| {
        protocol
            .run_stage2_only_on(backend, initial_counts)
            .expect("harness supplies valid counts")
    })
}

pub(crate) fn run_trials<F>(
    params: &ProtocolParams,
    noise: &NoiseMatrix,
    trials: u64,
    run: F,
) -> TrialSummary
where
    F: Fn(&TwoStageProtocol) -> Outcome + Sync,
{
    assert!(trials > 0, "need at least one trial");
    // Trials are independent and each is deterministic in its derived seed,
    // so they run across all cores; results are merged in trial order, which
    // makes the summary bit-identical to a sequential run regardless of the
    // worker count or completion order.
    let workers = std::thread::available_parallelism()
        .map(|p| p.get() as u64)
        .unwrap_or(1)
        .min(trials);
    let next_trial = std::sync::atomic::AtomicU64::new(0);
    let finished: std::sync::Mutex<Vec<(u64, Outcome)>> =
        std::sync::Mutex::new(Vec::with_capacity(trials as usize));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let trial = next_trial.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if trial >= trials {
                    break;
                }
                let seeded = reseed(params, params.seed().wrapping_add(trial));
                let protocol = TwoStageProtocol::new(seeded, noise.clone())
                    .expect("dimensions match by construction");
                let outcome = run(&protocol);
                finished
                    .lock()
                    .expect("trial worker poisoned the result lock")
                    .push((trial, outcome));
            });
        }
    });
    let mut outcomes = finished.into_inner().expect("all workers joined");
    outcomes.sort_by_key(|&(trial, _)| trial);

    let mut successes = 0u64;
    let mut consensus = 0u64;
    let mut correct = 0u64;
    let mut share = SampleStats::new();
    let mut rounds = SampleStats::new();
    let mut messages = SampleStats::new();
    let mut memory_bits = SampleStats::new();
    let mut stage1_bias = SampleStats::new();
    for (_, outcome) in &outcomes {
        if outcome.succeeded() {
            successes += 1;
        }
        if outcome.consensus_reached() {
            consensus += 1;
        }
        if outcome.winning_opinion() == Some(outcome.correct_opinion()) {
            correct += 1;
        }
        let dist = outcome.final_distribution();
        share.push(
            dist.counts()[outcome.correct_opinion().index()] as f64 / dist.num_nodes() as f64,
        );
        rounds.push(outcome.rounds() as f64);
        messages.push(outcome.messages() as f64);
        memory_bits.push(outcome.memory().bits_per_node() as f64);
        if let Some(last_stage1) = outcome
            .stage_records(plurality_core::StageId::One)
            .last()
            .and_then(|r| r.bias_after())
        {
            stage1_bias.push(last_stage1);
        }
    }
    TrialSummary {
        success: WilsonInterval::from_trials(successes, trials),
        consensus: WilsonInterval::from_trials(consensus, trials),
        correct: WilsonInterval::from_trials(correct, trials),
        share,
        rounds,
        messages,
        memory_bits,
        stage1_bias,
    }
}

/// Clones `params` with a different seed (all other fields preserved).
pub fn reseed(params: &ProtocolParams, seed: u64) -> ProtocolParams {
    ProtocolParams::builder(params.num_nodes(), params.num_opinions())
        .epsilon(params.epsilon())
        .delivery(params.delivery())
        .topology(params.topology())
        .fault(params.fault())
        .churn(params.churn())
        .noise_schedule(params.noise_schedule())
        .clock(params.clock())
        .constants(*params.constants())
        .seed(seed)
        .build()
        .expect("re-seeding preserves validity")
}

/// Initial counts for a plurality instance over `k` opinions where the
/// plurality opinion 0 holds `bias` more (as a fraction of the opinionated
/// set `s`) than every other opinion, and the rest is split evenly.
///
/// # Panics
///
/// Panics if the requested bias is infeasible (`bias ≥ 1`) or `k < 2`.
pub fn biased_counts(s: usize, k: usize, bias: f64) -> Vec<usize> {
    assert!(k >= 2 && (0.0..1.0).contains(&bias), "invalid bias request");
    let others = k - 1;
    // c0 - ci = bias, c0 + others*ci = 1  =>  ci = (1 - bias) / k.
    let ci = (1.0 - bias) / k as f64;
    let c0 = ci + bias;
    let mut counts = vec![0usize; k];
    counts[0] = (c0 * s as f64).round() as usize;
    for c in counts.iter_mut().skip(1) {
        *c = (ci * s as f64).round() as usize;
    }
    // Fix rounding drift on the last minority opinion.
    let total: usize = counts.iter().sum();
    if total > s {
        let excess = total - s;
        counts[others] = counts[others].saturating_sub(excess);
    } else {
        counts[0] += s - total;
    }
    // Guarantee a unique plurality on opinion 0 even for bias ≈ 0 (the
    // protocol API requires one); this shifts the realized bias by at most
    // 2/s, which is negligible at experiment sizes.
    let max_other = counts[1..].iter().copied().max().unwrap_or(0);
    if counts[0] <= max_other {
        let need = max_other - counts[0] + 1;
        let donor = (1..k)
            .max_by_key(|&i| counts[i])
            .expect("k >= 2 so a donor exists");
        counts[0] += need;
        counts[donor] = counts[donor].saturating_sub(need);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick_selects_correctly() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    fn to_args(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cli_parses_the_shared_flags() {
        let cli = Cli::parse_from(to_args(&[]));
        assert_eq!(cli, Cli::default());
        assert_eq!(cli.scale, Scale::Quick);
        assert!(!cli.json);
        assert_eq!(cli.backend, None);
        assert_eq!(cli.backend_or_auto(), ExecutionBackend::Auto);

        let cli = Cli::parse_from(to_args(&["--full", "--json", "--backend", "counting"]));
        assert_eq!(cli.scale, Scale::Full);
        assert!(cli.json);
        assert_eq!(cli.backend, Some(ExecutionBackend::Counting));

        let cli = Cli::parse_from(to_args(&["--backend=agent"]));
        assert_eq!(cli.backend, Some(ExecutionBackend::Agent));
    }

    #[test]
    fn cli_parses_trials_and_seed_overrides() {
        let cli = Cli::parse_from(to_args(&["--trials", "12", "--seed=99"]));
        assert_eq!(cli.trials, Some(12));
        assert_eq!(cli.seed, Some(99));
        assert_eq!(cli.trials_or(5), 12);
        assert_eq!(cli.seed_or(0), 99);
        let cli = Cli::parse_from(to_args(&[]));
        assert_eq!(cli.trials_or(5), 5);
        assert_eq!(cli.seed_or(7), 7);
    }

    #[test]
    #[should_panic(expected = "invalid --backend")]
    fn cli_rejects_unknown_backends() {
        let _ = Cli::parse_from(to_args(&["--backend", "gpu"]));
    }

    #[test]
    #[should_panic(expected = "unrecognized argument")]
    fn cli_rejects_mistyped_flags() {
        let _ = Cli::parse_from(to_args(&["--fulll"]));
    }

    #[test]
    fn cli_parse_failures_name_every_accepted_flag() {
        // The satellite requirement: a failed parse shows a usage synopsis
        // naming the accepted flags, not a bare error.
        let err = Cli::try_parse_from(to_args(&["--wat"])).unwrap_err();
        let rendered = err.to_string();
        for flag in ["--full", "--json", "--backend", "--trials", "--seed", "--help"] {
            assert!(rendered.contains(flag), "usage must mention {flag}: {rendered}");
        }
        assert!(rendered.contains("--wat"), "the offending flag is named");
    }

    #[test]
    fn cli_rejects_malformed_and_missing_values() {
        for args in [
            vec!["--trials"],
            vec!["--trials", "many"],
            vec!["--trials", "0"],
            vec!["--seed", "1.5"],
            vec!["--backend"],
            vec!["--json=yes"],
        ] {
            assert!(
                Cli::try_parse_from(to_args(&args)).is_err(),
                "{args:?} must be rejected"
            );
        }
    }

    #[test]
    fn backend_parameterized_trials_run_on_the_counting_backend() {
        let eps = 0.4;
        let noise = NoiseMatrix::uniform(2, eps).unwrap();
        let params = ProtocolParams::builder(500, 2)
            .epsilon(eps)
            .seed(9)
            .delivery(pushsim::DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let summary =
            rumor_spreading_trials_on(ExecutionBackend::Counting, &params, &noise, 2);
        assert_eq!(summary.success.trials(), 2);
        let plurality = plurality_trials_on(
            ExecutionBackend::Auto,
            &params,
            &noise,
            &[300, 150],
            2,
        );
        assert_eq!(plurality.success.trials(), 2);
    }

    #[test]
    fn biased_counts_have_the_requested_bias_and_total() {
        for &(s, k, bias) in &[(1_000usize, 3usize, 0.1f64), (500, 2, 0.3), (999, 5, 0.05)] {
            let counts = biased_counts(s, k, bias);
            assert_eq!(counts.len(), k);
            assert_eq!(counts.iter().sum::<usize>(), s);
            let c0 = counts[0] as f64 / s as f64;
            let c1 = counts[1] as f64 / s as f64;
            assert!((c0 - c1 - bias).abs() < 0.02, "counts {counts:?}");
        }
    }

    #[test]
    fn trial_summary_reports_consistent_counts() {
        let eps = 0.4;
        let noise = NoiseMatrix::uniform(2, eps).unwrap();
        let params = ProtocolParams::builder(200, 2).epsilon(eps).seed(1).build().unwrap();
        let summary = rumor_spreading_trials(&params, &noise, 3);
        assert_eq!(summary.success.trials(), 3);
        assert_eq!(summary.rounds.len(), 3);
        assert_eq!(summary.memory_bits.len(), 3);
        // Rounds equal the schedule for every trial.
        let expected = params.schedule().total_rounds() as f64;
        assert_eq!(summary.rounds.min(), Some(expected));
        assert_eq!(summary.rounds.max(), Some(expected));
    }

    #[test]
    fn plurality_trials_use_the_supplied_counts() {
        let eps = 0.4;
        let noise = NoiseMatrix::uniform(3, eps).unwrap();
        let params = ProtocolParams::builder(300, 3).epsilon(eps).seed(2).build().unwrap();
        let counts = biased_counts(300, 3, 0.2);
        let summary = plurality_trials(&params, &noise, &counts, 2);
        assert_eq!(summary.success.trials(), 2);
        assert!(summary.stage1_bias.len() <= 2);
    }

    #[test]
    fn reseed_changes_only_the_seed() {
        let params = ProtocolParams::builder(300, 3)
            .epsilon(0.3)
            .seed(2)
            .topology(pushsim::TopologySpec::Ring)
            .build()
            .unwrap();
        let reseeded = reseed(&params, 99);
        assert_eq!(reseeded.seed(), 99);
        assert_eq!(reseeded.num_nodes(), params.num_nodes());
        assert_eq!(reseeded.epsilon(), params.epsilon());
        assert_eq!(reseeded.topology(), params.topology());

        // Faults must survive re-seeding, or campaign trials past the
        // first would silently run fault-free.
        let faulty = ProtocolParams::builder(300, 3)
            .epsilon(0.3)
            .fault("drop(0.1)+byz(0.05:0)".parse().unwrap())
            .build()
            .unwrap();
        assert_eq!(reseed(&faulty, 7).fault(), faulty.fault());

        // The temporal axes must survive too, or observed trials would
        // silently run churn-free on a static ε under a synchronous clock.
        let temporal = ProtocolParams::builder(300, 3)
            .epsilon(0.3)
            .churn("join(0.1)+leave(0.05)".parse().unwrap())
            .noise_schedule("burst(0.4@2:1)".parse().unwrap())
            .clock("drift(20000)".parse().unwrap())
            .build()
            .unwrap();
        let reseeded = reseed(&temporal, 7);
        assert_eq!(reseeded.churn(), temporal.churn());
        assert_eq!(reseeded.noise_schedule(), temporal.noise_schedule());
        assert_eq!(reseeded.clock(), temporal.clock());
    }
}
