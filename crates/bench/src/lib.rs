//! # noisy-bench
//!
//! The experiment harness of the reproduction. Every figure/table listed in
//! DESIGN.md §5 has a corresponding binary in `src/bin/` that regenerates it
//! (workload generation, parameter sweep, baselines and the printed table),
//! and `benches/` holds the Criterion micro-benchmarks that document the
//! simulator's cost model.
//!
//! Run an experiment with, e.g.:
//!
//! ```text
//! cargo run --release -p noisy-bench --bin fig_f1_rounds_vs_n
//! cargo run --release -p noisy-bench --bin tab_t1_protocol_vs_baselines -- --full
//! ```
//!
//! Every binary accepts an optional `--full` flag: without it a reduced
//! ("quick") grid is used so the whole suite finishes in minutes on a
//! laptop; with it the grid matches the sizes quoted in EXPERIMENTS.md.

use gossip_analysis::ci::WilsonInterval;
use gossip_analysis::stats::SampleStats;
use gossip_analysis::table::Table;
use noisy_channel::NoiseMatrix;
use plurality_core::{ExecutionBackend, Outcome, ProtocolParams, TwoStageProtocol};
use pushsim::Opinion;

/// Scale of an experiment run: a reduced grid for quick checks or the full
/// grid documented in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced grid (default): finishes in roughly a minute per experiment.
    Quick,
    /// Full grid: the sizes used for the numbers recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Parses the scale from the process arguments (`--full` selects
    /// [`Scale::Full`]).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Chooses between the quick and full value of a parameter.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// The command-line options shared by every experiment binary:
///
/// * `--full` — run the full grid instead of the reduced quick grid;
/// * `--json` — emit result tables as JSON lines
///   ([`Table::to_json_lines`]) instead of aligned text, so figure
///   pipelines are scriptable;
/// * `--backend agent|counting|auto` (or `--backend=…`) — which simulation
///   backend protocol runs execute on (default [`ExecutionBackend::Auto`],
///   which resolves per run from the calibrated cost model; see
///   [`ExecutionBackend::resolve`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cli {
    /// Quick vs full grid (`--full`).
    pub scale: Scale,
    /// Emit tables as JSON lines (`--json`).
    pub json: bool,
    /// Backend requested for protocol runs (`--backend …`).
    pub backend: ExecutionBackend,
}

impl Cli {
    /// Parses the options from the process arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on an unknown `--backend` value (an
    /// experiment binary has nothing sensible to do with one).
    pub fn from_args() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses the options from an explicit argument list (testable form of
    /// [`from_args`](Self::from_args)).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on an unknown `--backend` value or an
    /// unrecognized argument — a mistyped flag must not silently run the
    /// experiment with default options.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut cli = Cli {
            scale: Scale::Quick,
            json: false,
            backend: ExecutionBackend::Auto,
        };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => cli.scale = Scale::Full,
                "--json" => cli.json = true,
                "--backend" => {
                    let value = args
                        .next()
                        .expect("--backend requires a value: agent, counting or auto");
                    cli.backend = value.parse().expect("invalid --backend value");
                }
                other => {
                    if let Some(value) = other.strip_prefix("--backend=") {
                        cli.backend = value.parse().expect("invalid --backend value");
                    } else {
                        panic!(
                            "unrecognized argument {other:?} \
                             (expected --full, --json or --backend agent|counting|auto)"
                        );
                    }
                }
            }
        }
        cli
    }

    /// Prints `table` in the selected output format: aligned text by
    /// default, JSON lines under `--json`.
    pub fn emit(&self, table: &Table) {
        if self.json {
            print!("{}", table.to_json_lines());
        } else {
            print!("{table}");
        }
    }

    /// Prints a free-form context line — suppressed under `--json` so the
    /// output stream stays machine-parseable.
    pub fn note(&self, line: &str) {
        if !self.json {
            println!("{line}");
        }
    }
}

/// Aggregated result of repeating one protocol configuration over several
/// seeds.
#[derive(Debug, Clone)]
pub struct TrialSummary {
    /// Success-rate estimate (consensus on the correct opinion).
    pub success: WilsonInterval,
    /// Rounds-to-completion statistics over the trials.
    pub rounds: SampleStats,
    /// Messages-sent statistics over the trials.
    pub messages: SampleStats,
    /// Per-node memory (bits) statistics over the trials.
    pub memory_bits: SampleStats,
    /// Bias towards the correct opinion at the end of Stage 1.
    pub stage1_bias: SampleStats,
}

/// Runs `trials` independent rumor-spreading executions (source opinion 0)
/// and aggregates them.
///
/// # Panics
///
/// Panics if the parameters and noise matrix are incompatible — experiment
/// binaries construct both from the same `k`, so a mismatch is a programming
/// error in the harness itself.
pub fn rumor_spreading_trials(
    params: &ProtocolParams,
    noise: &NoiseMatrix,
    trials: u64,
) -> TrialSummary {
    rumor_spreading_trials_on(ExecutionBackend::Agent, params, noise, trials)
}

/// [`rumor_spreading_trials`] on an explicit [`ExecutionBackend`]
/// ([`ExecutionBackend::Auto`] resolves per run from the cost model).
///
/// # Panics
///
/// Same as [`rumor_spreading_trials`].
pub fn rumor_spreading_trials_on(
    backend: ExecutionBackend,
    params: &ProtocolParams,
    noise: &NoiseMatrix,
    trials: u64,
) -> TrialSummary {
    run_trials(params, noise, trials, |protocol| {
        protocol
            .run_rumor_spreading_on(backend, Opinion::new(0))
            .expect("opinion 0 is always valid")
    })
}

/// Runs `trials` independent plurality-consensus executions from the given
/// initial counts and aggregates them.
///
/// # Panics
///
/// Panics if the counts are invalid for the parameters (harness programming
/// error).
pub fn plurality_trials(
    params: &ProtocolParams,
    noise: &NoiseMatrix,
    initial_counts: &[usize],
    trials: u64,
) -> TrialSummary {
    plurality_trials_on(ExecutionBackend::Agent, params, noise, initial_counts, trials)
}

/// [`plurality_trials`] on an explicit [`ExecutionBackend`]
/// ([`ExecutionBackend::Auto`] resolves per run from the cost model).
///
/// # Panics
///
/// Same as [`plurality_trials`].
pub fn plurality_trials_on(
    backend: ExecutionBackend,
    params: &ProtocolParams,
    noise: &NoiseMatrix,
    initial_counts: &[usize],
    trials: u64,
) -> TrialSummary {
    run_trials(params, noise, trials, |protocol| {
        protocol
            .run_plurality_consensus_on(backend, initial_counts)
            .expect("harness supplies valid counts")
    })
}

fn run_trials<F>(params: &ProtocolParams, noise: &NoiseMatrix, trials: u64, run: F) -> TrialSummary
where
    F: Fn(&TwoStageProtocol) -> Outcome + Sync,
{
    assert!(trials > 0, "need at least one trial");
    // Trials are independent and each is deterministic in its derived seed,
    // so they run across all cores; results are merged in trial order, which
    // makes the summary bit-identical to a sequential run regardless of the
    // worker count or completion order.
    let workers = std::thread::available_parallelism()
        .map(|p| p.get() as u64)
        .unwrap_or(1)
        .min(trials);
    let next_trial = std::sync::atomic::AtomicU64::new(0);
    let finished: std::sync::Mutex<Vec<(u64, Outcome)>> =
        std::sync::Mutex::new(Vec::with_capacity(trials as usize));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let trial = next_trial.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if trial >= trials {
                    break;
                }
                let seeded = reseed(params, params.seed().wrapping_add(trial));
                let protocol = TwoStageProtocol::new(seeded, noise.clone())
                    .expect("dimensions match by construction");
                let outcome = run(&protocol);
                finished
                    .lock()
                    .expect("trial worker poisoned the result lock")
                    .push((trial, outcome));
            });
        }
    });
    let mut outcomes = finished.into_inner().expect("all workers joined");
    outcomes.sort_by_key(|&(trial, _)| trial);

    let mut successes = 0u64;
    let mut rounds = SampleStats::new();
    let mut messages = SampleStats::new();
    let mut memory_bits = SampleStats::new();
    let mut stage1_bias = SampleStats::new();
    for (_, outcome) in &outcomes {
        if outcome.succeeded() {
            successes += 1;
        }
        rounds.push(outcome.rounds() as f64);
        messages.push(outcome.messages() as f64);
        memory_bits.push(outcome.memory().bits_per_node() as f64);
        if let Some(last_stage1) = outcome
            .stage_records(plurality_core::StageId::One)
            .last()
            .and_then(|r| r.bias_after())
        {
            stage1_bias.push(last_stage1);
        }
    }
    TrialSummary {
        success: WilsonInterval::from_trials(successes, trials),
        rounds,
        messages,
        memory_bits,
        stage1_bias,
    }
}

/// Clones `params` with a different seed (all other fields preserved).
pub fn reseed(params: &ProtocolParams, seed: u64) -> ProtocolParams {
    ProtocolParams::builder(params.num_nodes(), params.num_opinions())
        .epsilon(params.epsilon())
        .delivery(params.delivery())
        .constants(*params.constants())
        .seed(seed)
        .build()
        .expect("re-seeding preserves validity")
}

/// Initial counts for a plurality instance over `k` opinions where the
/// plurality opinion 0 holds `bias` more (as a fraction of the opinionated
/// set `s`) than every other opinion, and the rest is split evenly.
///
/// # Panics
///
/// Panics if the requested bias is infeasible (`bias ≥ 1`) or `k < 2`.
pub fn biased_counts(s: usize, k: usize, bias: f64) -> Vec<usize> {
    assert!(k >= 2 && (0.0..1.0).contains(&bias), "invalid bias request");
    let others = k - 1;
    // c0 - ci = bias, c0 + others*ci = 1  =>  ci = (1 - bias) / k.
    let ci = (1.0 - bias) / k as f64;
    let c0 = ci + bias;
    let mut counts = vec![0usize; k];
    counts[0] = (c0 * s as f64).round() as usize;
    for c in counts.iter_mut().skip(1) {
        *c = (ci * s as f64).round() as usize;
    }
    // Fix rounding drift on the last minority opinion.
    let total: usize = counts.iter().sum();
    if total > s {
        let excess = total - s;
        counts[others] = counts[others].saturating_sub(excess);
    } else {
        counts[0] += s - total;
    }
    // Guarantee a unique plurality on opinion 0 even for bias ≈ 0 (the
    // protocol API requires one); this shifts the realized bias by at most
    // 2/s, which is negligible at experiment sizes.
    let max_other = counts[1..].iter().copied().max().unwrap_or(0);
    if counts[0] <= max_other {
        let need = max_other - counts[0] + 1;
        let donor = (1..k)
            .max_by_key(|&i| counts[i])
            .expect("k >= 2 so a donor exists");
        counts[0] += need;
        counts[donor] = counts[donor].saturating_sub(need);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick_selects_correctly() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn cli_parses_the_shared_flags() {
        let to_args = |args: &[&str]| args.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let cli = Cli::parse_from(to_args(&[]));
        assert_eq!(cli.scale, Scale::Quick);
        assert!(!cli.json);
        assert_eq!(cli.backend, ExecutionBackend::Auto);

        let cli = Cli::parse_from(to_args(&["--full", "--json", "--backend", "counting"]));
        assert_eq!(cli.scale, Scale::Full);
        assert!(cli.json);
        assert_eq!(cli.backend, ExecutionBackend::Counting);

        let cli = Cli::parse_from(to_args(&["--backend=agent"]));
        assert_eq!(cli.backend, ExecutionBackend::Agent);
    }

    #[test]
    #[should_panic(expected = "invalid --backend")]
    fn cli_rejects_unknown_backends() {
        let _ = Cli::parse_from(vec!["--backend".to_string(), "gpu".to_string()]);
    }

    #[test]
    #[should_panic(expected = "unrecognized argument")]
    fn cli_rejects_mistyped_flags() {
        let _ = Cli::parse_from(vec!["--fulll".to_string()]);
    }

    #[test]
    fn backend_parameterized_trials_run_on_the_counting_backend() {
        let eps = 0.4;
        let noise = NoiseMatrix::uniform(2, eps).unwrap();
        let params = ProtocolParams::builder(500, 2)
            .epsilon(eps)
            .seed(9)
            .delivery(pushsim::DeliverySemantics::Poissonized)
            .build()
            .unwrap();
        let summary =
            rumor_spreading_trials_on(ExecutionBackend::Counting, &params, &noise, 2);
        assert_eq!(summary.success.trials(), 2);
        let plurality = plurality_trials_on(
            ExecutionBackend::Auto,
            &params,
            &noise,
            &[300, 150],
            2,
        );
        assert_eq!(plurality.success.trials(), 2);
    }

    #[test]
    fn biased_counts_have_the_requested_bias_and_total() {
        for &(s, k, bias) in &[(1_000usize, 3usize, 0.1f64), (500, 2, 0.3), (999, 5, 0.05)] {
            let counts = biased_counts(s, k, bias);
            assert_eq!(counts.len(), k);
            assert_eq!(counts.iter().sum::<usize>(), s);
            let c0 = counts[0] as f64 / s as f64;
            let c1 = counts[1] as f64 / s as f64;
            assert!((c0 - c1 - bias).abs() < 0.02, "counts {counts:?}");
        }
    }

    #[test]
    fn trial_summary_reports_consistent_counts() {
        let eps = 0.4;
        let noise = NoiseMatrix::uniform(2, eps).unwrap();
        let params = ProtocolParams::builder(200, 2).epsilon(eps).seed(1).build().unwrap();
        let summary = rumor_spreading_trials(&params, &noise, 3);
        assert_eq!(summary.success.trials(), 3);
        assert_eq!(summary.rounds.len(), 3);
        assert_eq!(summary.memory_bits.len(), 3);
        // Rounds equal the schedule for every trial.
        let expected = params.schedule().total_rounds() as f64;
        assert_eq!(summary.rounds.min(), Some(expected));
        assert_eq!(summary.rounds.max(), Some(expected));
    }

    #[test]
    fn plurality_trials_use_the_supplied_counts() {
        let eps = 0.4;
        let noise = NoiseMatrix::uniform(3, eps).unwrap();
        let params = ProtocolParams::builder(300, 3).epsilon(eps).seed(2).build().unwrap();
        let counts = biased_counts(300, 3, 0.2);
        let summary = plurality_trials(&params, &noise, &counts, 2);
        assert_eq!(summary.success.trials(), 2);
        assert!(summary.stage1_bias.len() <= 2);
    }

    #[test]
    fn reseed_changes_only_the_seed() {
        let params = ProtocolParams::builder(300, 3).epsilon(0.3).seed(2).build().unwrap();
        let reseeded = reseed(&params, 99);
        assert_eq!(reseeded.seed(), 99);
        assert_eq!(reseeded.num_nodes(), params.num_nodes());
        assert_eq!(reseeded.epsilon(), params.epsilon());
    }
}
