//! Execution of [`ScenarioSpec`]s through the generic protocol/dynamics
//! stack.
//!
//! A [`Runner`] expands a spec's sweep axes into a grid (Cartesian product,
//! axis order `k`, `n`, `eps`, `bias`, `ell`, `delta`, `delivery`,
//! `topology`, `fault`),
//! executes every point for the requested number of trials on the
//! requested [`ExecutionBackend`], and returns a structured [`RunReport`].
//! [`RunReport::to_table`] renders the report; callers that need bespoke
//! tables (the registry's composite experiments) read the typed summaries
//! directly.
//!
//! What a point *reports* is the spec's [`ObserveMode`]:
//!
//! * [`Summary`](ObserveMode::Summary) — end-of-run aggregates, one row
//!   per point with the spec's metric columns (the default).
//! * [`Trajectory`](ObserveMode::Trajectory) — the full per-phase
//!   trajectory of every execution, recorded by an attached
//!   [`TrajectoryRecorder`]: one row per phase (per trial).
//! * [`Phases`](ObserveMode::Phases) — per-phase aggregates across the
//!   trials through a shared [`OnlineStats`] observer.
//!
//! [`Runner::run_streamed`] additionally emits every result row as a JSON
//! line the moment it exists — per completed point for summaries, *live
//! per phase* for trajectory runs (via a [`StreamSink`] attached to the
//! execution) — instead of holding everything for one final table.
//!
//! Protocol scenarios run through the shared parallel trial harness, so
//! their statistics are bit-identical to the pre-spec harness for the same
//! parameters and seed (attached observers and
//! [`StopCondition::ScheduleExhausted`] provably leave RNG streams
//! untouched). Dynamics scenarios derive one seed per `(point, trial)`
//! cell with [`derive_seed`] and are likewise deterministic in the base
//! seed.

use crate::spec::{InitSpec, Metric, ObserveMode, ScenarioKind, ScenarioSpec, SpecError};
use crate::{biased_counts, run_trials, TrialSummary};
use gossip_analysis::ci::WilsonInterval;
use gossip_analysis::observe::{
    OnlineStats, StreamSink, TrajectoryRecorder, PHASES_HEADERS, TRAJECTORY_HEADERS,
};
use gossip_analysis::stats::SampleStats;
use gossip_analysis::sweep::derive_seed;
use gossip_analysis::table::{json_line, Table};
use noisy_channel::NoiseMatrix;
use opinion_dynamics::RuleSpec;
use plurality_core::observe::{Fanout, NoObserver, Observer, StopCondition};
use plurality_core::{bounds, ExecutionBackend, ProtocolParams, TwoStageProtocol};
use pushsim::{
    BlockCountingNetwork, ChurnSpec, ClockSpec, CountingNetwork, DeliverySemantics, FaultSpec,
    Network, NoiseSchedule, Opinion, PhaseObservation, PushBackend, SimConfig, TopologySpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;

/// Salt mixed into the base seed for dynamics decision randomness, so the
/// decision RNG stream is unrelated to the delivery RNG stream.
const DECISION_SEED_SALT: u64 = 0xD0_0DAD;

/// Salt for the phase-statistics adoption probe (the "which opinion would
/// the Stage 1 rule pick" re-sample), keeping it independent of delivery.
const ADOPTION_SEED_SALT: u64 = 0x5AFE;

/// One grid point of a sweep: the resolved parameter values and the point's
/// position in the grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Index of the point in row order.
    pub index: usize,
    /// Opinion count at this point.
    pub k: usize,
    /// Network size at this point.
    pub n: usize,
    /// Schedule ε at this point.
    pub eps: f64,
    /// Initial bias at this point (scenarios with a biased initial
    /// configuration only).
    pub bias: Option<f64>,
    /// Sample size ℓ at this point (`gap` scenarios only).
    pub ell: Option<u64>,
    /// Received-distribution bias δ at this point (`gap` scenarios only).
    pub delta: Option<f64>,
    /// Delivery process at this point (the spec's delivery unless a
    /// `phase` scenario sweeps it).
    pub delivery: DeliverySemantics,
    /// Communication topology at this point (the spec's topology unless
    /// `sweep.topology` overrides it).
    pub topology: TopologySpec,
    /// Fault-injection model at this point (the spec's `fault` unless
    /// `sweep.fault` makes it a campaign axis).
    pub fault: FaultSpec,
    /// Population/edge churn at this point (the spec's `churn` unless
    /// `sweep.churn` makes it a campaign axis).
    pub churn: ChurnSpec,
    /// Noise schedule `ε(t)` at this point (the spec's `schedule` unless
    /// `sweep.schedule` overrides it).
    pub schedule: NoiseSchedule,
    /// Clock model at this point (the spec's `clock` unless `sweep.clock`
    /// overrides it).
    pub clock: ClockSpec,
}

/// Aggregated result of a dynamics scenario at one grid point.
#[derive(Debug, Clone)]
pub struct DynamicsSummary {
    /// Exact-consensus rate over the trials.
    pub consensus: WilsonInterval,
    /// Rate at which the plurality opinion won.
    pub correct: WilsonInterval,
    /// Final share of the plurality opinion.
    pub share: SampleStats,
    /// Rounds executed.
    pub rounds: SampleStats,
}

/// Result of a `gap` scenario at one grid point.
#[derive(Debug, Clone)]
pub struct GapSummary {
    /// Monte-Carlo estimate of the sample-majority gap.
    pub measured: f64,
    /// The Proposition 1 analytic lower bound.
    pub bound: f64,
    /// The exact binomial gap (`k = 2` only).
    pub exact: Option<f64>,
    /// Whether the measured gap dominates the bound up to the Monte-Carlo
    /// noise floor `3/√trials`.
    pub holds: bool,
}

/// Result of a `phase` scenario at one grid point (statistics over the
/// trials of one pushed phase).
#[derive(Debug, Clone)]
pub struct PhaseStatsSummary {
    /// Total messages observed.
    pub total: SampleStats,
    /// Mean messages received per node.
    pub mean_received: SampleStats,
    /// Per-node received-count variance.
    pub var_received: SampleStats,
    /// Fraction of nodes that received at least one message.
    pub frac_received: SampleStats,
    /// Fraction of nodes whose Stage 1 adoption rule would pick opinion 0.
    pub adopt0: SampleStats,
}

/// The recorded trajectories of one grid point, one recorder per trial
/// ([`ObserveMode::Trajectory`]).
#[derive(Debug, Clone)]
pub struct TrajectorySet {
    /// Per-trial recorders, in trial order.
    pub trials: Vec<TrajectoryRecorder>,
}

/// The per-point result, shaped by the scenario kind and the spec's
/// [`ObserveMode`].
#[derive(Debug, Clone)]
pub enum PointSummary {
    /// Result of a rumor / plurality / stage2 scenario.
    Protocol(TrialSummary),
    /// Result of a dynamics scenario.
    Dynamics(DynamicsSummary),
    /// Result of a `gap` scenario.
    Gap(GapSummary),
    /// Result of a `phase` scenario.
    PhaseStats(PhaseStatsSummary),
    /// Per-trial trajectories ([`ObserveMode::Trajectory`]).
    Trajectory(TrajectorySet),
    /// Per-phase aggregates across trials ([`ObserveMode::Phases`]).
    Phases(OnlineStats),
}

/// One executed grid point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Where in the grid this result sits.
    pub point: GridPoint,
    /// The aggregated trial statistics.
    pub summary: PointSummary,
}

/// The structured outcome of executing a [`ScenarioSpec`].
#[derive(Debug, Clone)]
pub struct RunReport {
    spec: ScenarioSpec,
    points: Vec<PointResult>,
}

impl RunReport {
    /// The spec this report was produced from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The executed grid points, in row order.
    pub fn points(&self) -> &[PointResult] {
        &self.points
    }

    /// Renders the report as a table: one column per swept axis (in axis
    /// order) followed by the observe mode's data columns (the spec's
    /// metrics for summaries, the trajectory / phase-aggregate columns
    /// otherwise).
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(headers(&self.spec));
        for result in &self.points {
            for row in point_rows(&self.spec, result) {
                table.push_row(row);
            }
        }
        table
    }
}

/// Which axes are swept (and hence shown as columns), in axis order.
/// Trajectory rows already end with the canonical `topology` column
/// ([`TRAJECTORY_HEADERS`]), so a swept topology axis is suppressed there
/// — otherwise every JSON row would carry two identical `topology` keys.
pub(crate) fn axis_columns(spec: &ScenarioSpec) -> [(&'static str, bool); 12] {
    let sweep = &spec.sweep;
    [
        ("k", !sweep.k.is_empty()),
        ("n", !sweep.n.is_empty()),
        ("eps", !sweep.eps.is_empty()),
        ("bias", !sweep.bias.is_empty()),
        ("ell", !sweep.ell.is_empty()),
        ("delta", !sweep.delta.is_empty()),
        ("delivery", !sweep.delivery.is_empty()),
        (
            "topology",
            !sweep.topology.is_empty() && spec.observe != ObserveMode::Trajectory,
        ),
        ("fault", !sweep.fault.is_empty()),
        ("churn", !sweep.churn.is_empty()),
        ("schedule", !sweep.schedule.is_empty()),
        ("clock", !sweep.clock.is_empty()),
    ]
}

/// The full header row of a spec's result table (axis columns + data
/// columns); shared by [`RunReport::to_table`] and the streaming path so
/// streamed rows and the final table are byte-compatible.
pub fn headers(spec: &ScenarioSpec) -> Vec<String> {
    let mut headers: Vec<String> = axis_columns(spec)
        .iter()
        .filter(|(_, shown)| *shown)
        .map(|(name, _)| name.to_string())
        .collect();
    match spec.observe {
        ObserveMode::Summary => {
            headers.extend(spec.effective_metrics().iter().map(|m| m.header().to_string()));
        }
        ObserveMode::Trajectory => {
            if spec.trials > 1 {
                headers.push("trial".to_string());
            }
            headers.extend(TRAJECTORY_HEADERS.iter().map(|h| h.to_string()));
            if tracks_population(spec) {
                headers.push("population".to_string());
            }
        }
        ObserveMode::Phases => {
            headers.extend(PHASES_HEADERS.iter().map(|h| h.to_string()));
        }
    }
    headers
}

/// True when trajectory rows should carry the live per-phase `population`
/// column: some grid point churns the population, so the node count is no
/// longer a constant of the run.
pub(crate) fn tracks_population(spec: &ScenarioSpec) -> bool {
    spec.observe == ObserveMode::Trajectory
        && (spec.churn.has_population_churn()
            || spec.sweep.churn.iter().any(|c| c.has_population_churn()))
}

/// The swept-axis cells of one grid point, in axis order. Together with
/// [`headers`] and [`point_rows`] this lets external drivers (the scenario
/// service's sweep-cell cache) re-render a point's rows byte-identically
/// to the streaming path.
pub fn axis_cells(spec: &ScenarioSpec, point: &GridPoint) -> Vec<String> {
    let mut cells = Vec::new();
    let axes = axis_columns(spec);
    if axes[0].1 {
        cells.push(point.k.to_string());
    }
    if axes[1].1 {
        cells.push(point.n.to_string());
    }
    if axes[2].1 {
        cells.push(format!("{}", point.eps));
    }
    if axes[3].1 {
        cells.push(format!("{:.4}", point.bias.unwrap_or(f64::NAN)));
    }
    if axes[4].1 {
        cells.push(point.ell.map_or_else(|| "-".to_string(), |e| e.to_string()));
    }
    if axes[5].1 {
        cells.push(point.delta.map_or_else(|| "-".to_string(), |d| format!("{d}")));
    }
    if axes[6].1 {
        cells.push(point.delivery.spec_name().to_string());
    }
    if axes[7].1 {
        cells.push(point.topology.to_string());
    }
    if axes[8].1 {
        cells.push(point.fault.to_string());
    }
    if axes[9].1 {
        cells.push(point.churn.to_string());
    }
    if axes[10].1 {
        cells.push(point.schedule.to_string());
    }
    if axes[11].1 {
        cells.push(point.clock.to_string());
    }
    cells
}

/// All result rows of one executed point (one row for summaries, one per
/// phase/trial for the observe modes), each prefixed with the point's
/// swept-axis cells.
pub fn point_rows(spec: &ScenarioSpec, result: &PointResult) -> Vec<Vec<String>> {
    let prefix = axis_cells(spec, &result.point);
    let with_prefix = |row: Vec<String>| -> Vec<String> {
        let mut cells = prefix.clone();
        cells.extend(row);
        cells
    };
    match &result.summary {
        PointSummary::Trajectory(set) => {
            let population = tracks_population(spec);
            let mut rows = Vec::new();
            for (trial, recorder) in set.trials.iter().enumerate() {
                for (mut row, snapshot) in
                    recorder.rows().into_iter().zip(recorder.snapshots())
                {
                    if population {
                        row.push(snapshot.distribution().num_nodes().to_string());
                    }
                    if spec.trials > 1 {
                        row.insert(0, trial.to_string());
                    }
                    rows.push(with_prefix(row));
                }
            }
            rows
        }
        PointSummary::Phases(stats) => stats
            .to_table()
            .rows()
            .iter()
            .map(|row| with_prefix(row.clone()))
            .collect(),
        _ => {
            let metrics = spec.effective_metrics();
            vec![with_prefix(
                metrics.iter().map(|&m| format_metric(m, result)).collect(),
            )]
        }
    }
}

/// Renders one metric cell for one executed point.
fn format_metric(metric: Metric, result: &PointResult) -> String {
    let point = &result.point;
    let mean_or_dash = |stats: &SampleStats, render: &dyn Fn(f64) -> String| {
        if stats.is_empty() {
            "-".to_string()
        } else {
            render(stats.mean())
        }
    };
    match &result.summary {
        PointSummary::Protocol(s) => match metric {
            Metric::Success => s.success.to_string(),
            Metric::Rounds => format!("{:.0}", s.rounds.mean()),
            Metric::RoundsNorm => {
                format!("{:.2}", s.rounds.mean() / bounds::rounds_bound(point.n, point.eps))
            }
            Metric::Messages => format!("{:.2e}", s.messages.mean()),
            Metric::Stage1Bias => mean_or_dash(&s.stage1_bias, &|m| format!("{m:.4}")),
            Metric::Stage1BiasNorm => {
                let threshold = ((point.n as f64).ln() / point.n as f64).sqrt();
                mean_or_dash(&s.stage1_bias, &|m| format!("{:.2}", m / threshold))
            }
            Metric::MemoryBits => format!("{:.1}", s.memory_bits.mean()),
            Metric::Consensus => s.consensus.to_string(),
            Metric::Correct => s.correct.to_string(),
            Metric::Share => format!("{:.3}", s.share.mean()),
            // validate() restricts metrics per kind.
            other => unreachable!("metric {other} on a protocol scenario"),
        },
        PointSummary::Dynamics(s) => match metric {
            Metric::Consensus => s.consensus.to_string(),
            Metric::Correct => s.correct.to_string(),
            Metric::Share => format!("{:.3}", s.share.mean()),
            Metric::Rounds => format!("{:.0}", s.rounds.mean()),
            other => unreachable!("metric {other} on a dynamics scenario"),
        },
        PointSummary::Gap(s) => match metric {
            Metric::Gap => format!("{:.4}", s.measured),
            Metric::GapBound => format!("{:.4}", s.bound),
            Metric::GapExact => {
                s.exact.map_or_else(|| "-".to_string(), |e| format!("{e:.4}"))
            }
            Metric::GapHolds => s.holds.to_string(),
            other => unreachable!("metric {other} on a gap scenario"),
        },
        PointSummary::PhaseStats(s) => match metric {
            Metric::TotalReceived => {
                format!("{:.0} ± {:.0}", s.total.mean(), s.total.ci95_half_width())
            }
            Metric::MeanReceived => format!("{:.3}", s.mean_received.mean()),
            Metric::VarReceived => format!("{:.3}", s.var_received.mean()),
            Metric::FracReceived => format!("{:.4}", s.frac_received.mean()),
            Metric::Adopt0 => format!("{:.4}", s.adopt0.mean()),
            other => unreachable!("metric {other} on a phase scenario"),
        },
        PointSummary::Trajectory(_) | PointSummary::Phases(_) => {
            unreachable!("observe modes render rows, not metric cells")
        }
    }
}

/// How a protocol point runs (shared by the summary and observed paths,
/// and by the campaign engine's per-seed runs).
#[derive(Clone, Copy)]
pub(crate) enum ProtocolRun<'a> {
    Rumor(Opinion),
    Plurality(&'a [usize]),
    Stage2(&'a [usize]),
}

impl ProtocolRun<'_> {
    pub(crate) fn execute(
        self,
        protocol: &TwoStageProtocol,
        backend: ExecutionBackend,
        stop: &StopCondition,
        observer: &mut dyn Observer,
    ) -> Result<plurality_core::Outcome, plurality_core::ProtocolError> {
        let session = protocol.session().stop_when(stop.clone());
        match self {
            ProtocolRun::Rumor(source) => {
                session.run_rumor_spreading_on(backend, source, observer)
            }
            ProtocolRun::Plurality(counts) => {
                session.run_plurality_consensus_on(backend, counts, observer)
            }
            ProtocolRun::Stage2(counts) => {
                session.run_stage2_only_on(backend, counts, observer)
            }
        }
    }
}

/// Executes a validated [`ScenarioSpec`].
#[derive(Debug, Clone)]
pub struct Runner {
    spec: ScenarioSpec,
}

impl Runner {
    /// Validates the spec and prepares a runner for it.
    ///
    /// # Errors
    ///
    /// Returns the spec's [`validate`](ScenarioSpec::validate) error.
    pub fn new(spec: ScenarioSpec) -> Result<Self, SpecError> {
        spec.validate()?;
        Ok(Self { spec })
    }

    /// The spec this runner executes.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The header row of this runner's result table.
    pub fn headers(&self) -> Vec<String> {
        headers(&self.spec)
    }

    /// Executes every grid point and returns the structured report.
    ///
    /// # Errors
    ///
    /// Propagates parameter/noise/simulator construction failures for the
    /// offending grid point ([`SpecError::Protocol`], [`SpecError::Noise`],
    /// [`SpecError::Sim`]).
    pub fn run(&self) -> Result<RunReport, SpecError> {
        self.run_inner(None::<&mut std::io::Sink>)
    }

    /// Executes the spec, emitting every result row to `out` as a JSON
    /// line the moment it exists: per completed grid point for summary
    /// runs, live per finished phase for trajectory runs (a
    /// [`StreamSink`] rides along the execution). The rows are exactly
    /// [`RunReport::to_table`]'s rows, so `--stream` output and the final
    /// table are byte-compatible; the full report is still returned.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run); write errors on `out` are ignored (the
    /// run completes and the report is still built).
    pub fn run_streamed(&self, out: &mut dyn Write) -> Result<RunReport, SpecError> {
        self.run_inner(Some(out))
    }

    fn run_inner<W: Write + ?Sized>(
        &self,
        mut stream: Option<&mut W>,
    ) -> Result<RunReport, SpecError> {
        let spec = &self.spec;
        let eps_swept = !spec.sweep.eps.is_empty();
        let mut points = Vec::new();
        for point in expand_grid(spec) {
            let summary = self.run_point(point, eps_swept, stream.as_deref_mut())?;
            let result = PointResult { point, summary };
            if let Some(out) = stream.as_mut() {
                // Trajectory rows already streamed live from inside the run.
                if spec.observe != ObserveMode::Trajectory {
                    emit_rows(out, spec, &result);
                }
            }
            points.push(result);
        }
        Ok(RunReport {
            spec: spec.clone(),
            points,
        })
    }

    fn run_point<W: Write + ?Sized>(
        &self,
        point: GridPoint,
        eps_swept: bool,
        stream: Option<&mut W>,
    ) -> Result<PointSummary, SpecError> {
        let spec = &self.spec;

        // The below-simulation-level kinds first: no protocol parameters,
        // no noise matrix.
        if let ScenarioKind::SampleMajorityGap { .. } = &spec.kind {
            return Ok(PointSummary::Gap(self.gap_point(point)));
        }

        let GridPoint { k, n, eps, .. } = point;
        let params = ProtocolParams::builder(n, k)
            .epsilon(eps)
            .seed(spec.seed)
            .delivery(spec.delivery)
            .topology(point.topology)
            .fault(point.fault)
            .churn(point.churn)
            .noise_schedule(point.schedule)
            .clock(point.clock)
            .constants(spec.constants)
            .build()?;
        let noise_spec = if eps_swept {
            spec.noise.with_epsilon(eps)
        } else {
            spec.noise.clone()
        };
        let noise = noise_spec.build(k)?;

        if let ScenarioKind::PhaseStats { rounds, init } = &spec.kind {
            let counts = resolve_counts(init, point);
            return Ok(PointSummary::PhaseStats(
                self.phase_stats_point(point, *rounds, &counts, &noise)?,
            ));
        }

        match spec.observe {
            ObserveMode::Summary => self.summary_point(point, &params, &noise),
            ObserveMode::Trajectory | ObserveMode::Phases => {
                self.observed_point(point, &params, &noise, stream)
            }
        }
    }

    /// The default end-of-run summaries (one row per point).
    fn summary_point(
        &self,
        point: GridPoint,
        params: &ProtocolParams,
        noise: &NoiseMatrix,
    ) -> Result<PointSummary, SpecError> {
        let spec = &self.spec;
        let stop = spec.stop.to_condition();
        Ok(match &spec.kind {
            ScenarioKind::RumorSpreading { source } => PointSummary::Protocol(
                self.protocol_trials(params, noise, &stop, ProtocolRun::Rumor(Opinion::new(*source))),
            ),
            ScenarioKind::PluralityConsensus { init } => {
                let counts = resolve_counts(init, point);
                validate_counts(params, noise, &counts)?;
                PointSummary::Protocol(self.protocol_trials(
                    params,
                    noise,
                    &stop,
                    ProtocolRun::Plurality(&counts),
                ))
            }
            ScenarioKind::Stage2Only { init } => {
                let counts = resolve_counts(init, point);
                validate_counts(params, noise, &counts)?;
                PointSummary::Protocol(self.protocol_trials(
                    params,
                    noise,
                    &stop,
                    ProtocolRun::Stage2(&counts),
                ))
            }
            ScenarioKind::DynamicsRule { rule, init, rounds } => {
                let counts = resolve_counts(init, point);
                let plurality = validate_counts(params, noise, &counts)?;
                let budget = rounds.unwrap_or_else(|| params.schedule().total_rounds());
                PointSummary::Dynamics(self.dynamics_trials(
                    point, *rule, &counts, plurality, budget, noise,
                )?)
            }
            ScenarioKind::SampleMajorityGap { .. } | ScenarioKind::PhaseStats { .. } => {
                unreachable!("handled before parameter construction")
            }
        })
    }

    /// Runs the protocol trials of one grid point through the shared
    /// parallel harness, with the spec's stop condition and no observer —
    /// bit-identical to the pre-observation harness when no `stop.*` key
    /// is set.
    fn protocol_trials(
        &self,
        params: &ProtocolParams,
        noise: &NoiseMatrix,
        stop: &StopCondition,
        run: ProtocolRun<'_>,
    ) -> TrialSummary {
        let backend = self.spec.backend;
        run_trials(params, noise, self.spec.trials, |protocol| {
            run.execute(protocol, backend, stop, &mut NoObserver)
                .expect("the runner validated the configuration")
        })
    }

    /// Runs the observed (trajectory / per-phase aggregate) path of one
    /// protocol or dynamics point: sequential trials, one observer per
    /// trial (trajectory) or shared across trials (phases), optionally a
    /// live [`StreamSink`] riding along.
    fn observed_point<W: Write + ?Sized>(
        &self,
        point: GridPoint,
        params: &ProtocolParams,
        noise: &NoiseMatrix,
        mut stream: Option<&mut W>,
    ) -> Result<PointSummary, SpecError> {
        let spec = &self.spec;
        let stop = spec.stop.to_condition();
        let mut trajectories: Vec<TrajectoryRecorder> = Vec::new();
        let mut aggregates = OnlineStats::new();

        for trial in 0..spec.trials {
            let mut recorder = TrajectoryRecorder::new();
            // Only trajectory mode streams live per-phase rows (they ARE
            // its result rows); phase aggregates only exist once the
            // point's trials are done and stream from `run_inner` then.
            let live = spec.observe == ObserveMode::Trajectory;
            let mut sink = stream.as_mut().filter(|_| live).map(|out| {
                let (mut prefix_headers, mut prefix) =
                    (Vec::new(), axis_cells(spec, &point));
                for (name, shown) in axis_columns(spec) {
                    if shown {
                        prefix_headers.push(name.to_string());
                    }
                }
                if spec.trials > 1 {
                    prefix_headers.push("trial".to_string());
                    prefix.push(trial.to_string());
                }
                let sink = StreamSink::with_prefix(out, &prefix_headers, &prefix);
                if tracks_population(spec) {
                    sink.with_population()
                } else {
                    sink
                }
            });

            {
                let mut observers: Vec<&mut dyn Observer> = Vec::new();
                match spec.observe {
                    ObserveMode::Trajectory => observers.push(&mut recorder),
                    ObserveMode::Phases => observers.push(&mut aggregates),
                    ObserveMode::Summary => unreachable!("summary points take the other path"),
                }
                if let Some(sink) = sink.as_mut() {
                    observers.push(sink);
                }
                let mut fanout = Fanout::new(observers);
                self.run_one_observed(point, params, noise, trial, &stop, &mut fanout)?;
            }
            if spec.observe == ObserveMode::Trajectory {
                trajectories.push(recorder);
            }
        }
        Ok(match spec.observe {
            ObserveMode::Trajectory => PointSummary::Trajectory(TrajectorySet {
                trials: trajectories,
            }),
            ObserveMode::Phases => PointSummary::Phases(aggregates),
            ObserveMode::Summary => unreachable!("summary points take the other path"),
        })
    }

    /// Executes one observed trial (protocol kinds through a [`Session`],
    /// dynamics through `run_until`), seeded exactly like the
    /// unobserved paths.
    ///
    /// [`Session`]: plurality_core::Session
    fn run_one_observed(
        &self,
        point: GridPoint,
        params: &ProtocolParams,
        noise: &NoiseMatrix,
        trial: u64,
        stop: &StopCondition,
        observer: &mut dyn Observer,
    ) -> Result<(), SpecError> {
        let spec = &self.spec;
        match &spec.kind {
            ScenarioKind::RumorSpreading { .. }
            | ScenarioKind::PluralityConsensus { .. }
            | ScenarioKind::Stage2Only { .. } => {
                // Same per-trial seed derivation as the parallel harness.
                let seeded = crate::reseed(params, params.seed().wrapping_add(trial));
                let protocol = TwoStageProtocol::new(seeded, noise.clone())?;
                let counts;
                let run = match &spec.kind {
                    ScenarioKind::RumorSpreading { source } => {
                        ProtocolRun::Rumor(Opinion::new(*source))
                    }
                    ScenarioKind::PluralityConsensus { init } => {
                        counts = resolve_counts(init, point);
                        ProtocolRun::Plurality(&counts)
                    }
                    ScenarioKind::Stage2Only { init } => {
                        counts = resolve_counts(init, point);
                        ProtocolRun::Stage2(&counts)
                    }
                    _ => unreachable!("outer match covers protocol kinds"),
                };
                run.execute(&protocol, spec.backend, stop, observer)?;
                Ok(())
            }
            ScenarioKind::DynamicsRule { rule, init, rounds } => {
                let counts = resolve_counts(init, point);
                let plurality = validate_counts(params, noise, &counts)?;
                let budget = rounds.unwrap_or_else(|| params.schedule().total_rounds());
                let stop = dynamics_stop(budget, stop);
                let resolved = spec.backend.resolve(
                    point.n,
                    point.k,
                    spec.delivery,
                    point.topology,
                    point.fault,
                    point.churn,
                    point.clock,
                );
                let config = SimConfig::builder(point.n, point.k)
                    .seed(derive_seed(spec.seed, point.index, trial))
                    .delivery(spec.delivery)
                    .topology(point.topology)
                    .build()?;
                let mut rng = StdRng::seed_from_u64(derive_seed(
                    spec.seed ^ DECISION_SEED_SALT,
                    point.index,
                    trial,
                ));
                match resolved {
                    ExecutionBackend::Agent => {
                        let mut net = Network::new(config, noise.clone())?;
                        net.seed_counts(&counts)?;
                        rule.build::<Network>().run_until(
                            &mut net,
                            &mut rng,
                            Some(plurality),
                            &stop,
                            observer,
                        );
                    }
                    ExecutionBackend::Counting => {
                        let mut net = CountingNetwork::new(config, noise.clone())?;
                        PushBackend::seed_counts(&mut net, &counts)?;
                        rule.build::<CountingNetwork>().run_until(
                            &mut net,
                            &mut rng,
                            Some(plurality),
                            &stop,
                            observer,
                        );
                    }
                    ExecutionBackend::BlockCounting => {
                        let mut net = BlockCountingNetwork::new(config, noise.clone())?;
                        PushBackend::seed_counts(&mut net, &counts)?;
                        rule.build::<BlockCountingNetwork>().run_until(
                            &mut net,
                            &mut rng,
                            Some(plurality),
                            &stop,
                            observer,
                        );
                    }
                    ExecutionBackend::Auto => unreachable!("resolve never returns Auto"),
                }
                Ok(())
            }
            ScenarioKind::SampleMajorityGap { .. } | ScenarioKind::PhaseStats { .. } => {
                unreachable!("observe modes are rejected for these kinds")
            }
        }
    }

    /// The Monte-Carlo sample-majority gap of one `(k, ℓ, δ)` grid cell
    /// (Proposition 1 / Lemmas 9–11). `spec.trials` is the number of
    /// Monte-Carlo samples; each cell derives its own RNG from the base
    /// seed, so cells are independent of grid shape and order.
    fn gap_point(&self, point: GridPoint) -> GapSummary {
        let spec = &self.spec;
        let ell = point.ell.expect("gap points carry ell");
        let delta = point.delta.expect("gap points carry delta");
        let trials = spec.trials;
        let mut rng = StdRng::seed_from_u64(derive_seed(spec.seed, point.index, 0));
        let dist = biased_received_distribution(point.k, delta);
        let measured = bounds::sample_majority_gap(&dist, ell, 0, 1, trials, &mut rng);
        let bound = bounds::proposition1_lower_bound(delta, ell, point.k);
        let exact = (point.k == 2).then(|| bounds::exact_majority_gap_binary(dist[0], ell));
        // Allow the Monte-Carlo noise floor when comparing.
        let holds = measured >= bound - 3.0 / (trials as f64).sqrt();
        GapSummary {
            measured,
            bound,
            exact,
            holds,
        }
    }

    /// One pushed phase per trial on the agent-level backend, reporting
    /// the phase observation's statistics plus the Stage 1 adoption probe
    /// (experiment F8: Claim 1 / Lemma 3 across processes O, B, P). Always
    /// agent-level: the per-node moments only exist there.
    fn phase_stats_point(
        &self,
        point: GridPoint,
        rounds: u64,
        counts: &[usize],
        noise: &NoiseMatrix,
    ) -> Result<PhaseStatsSummary, SpecError> {
        let spec = &self.spec;
        let mut summary = PhaseStatsSummary {
            total: SampleStats::new(),
            mean_received: SampleStats::new(),
            var_received: SampleStats::new(),
            frac_received: SampleStats::new(),
            adopt0: SampleStats::new(),
        };
        for trial in 0..spec.trials {
            let config = SimConfig::builder(point.n, point.k)
                .seed(derive_seed(spec.seed, point.index, trial))
                .delivery(point.delivery)
                .topology(point.topology)
                .build()?;
            let mut net = Network::new(config, noise.clone())?;
            net.seed_counts(counts)?;
            net.begin_phase();
            for _ in 0..rounds {
                net.push_round(|_, s| s.opinion());
            }
            let inboxes = net.end_phase();
            summary.total.push(inboxes.total_received() as f64);
            summary.mean_received.push(inboxes.mean_received());
            summary.var_received.push(inboxes.received_variance());
            summary.frac_received.push(inboxes.fraction_with_messages());

            // The Stage 1 adoption rule applied as a probe: how many nodes
            // would adopt opinion 0 if they re-sampled one received
            // message (independent RNG, so delivery streams stay pure).
            let mut rng = StdRng::seed_from_u64(derive_seed(
                spec.seed ^ ADOPTION_SEED_SALT,
                point.index,
                trial,
            ));
            let adopted0 = (0..point.n)
                .filter(|&node| {
                    inboxes
                        .sample_one(node, &mut rng)
                        .map(|o| o.index() == 0)
                        .unwrap_or(false)
                })
                .count();
            summary.adopt0.push(adopted0 as f64 / point.n as f64);
        }
        Ok(summary)
    }

    /// Runs the dynamics rule for every trial of one grid point. Each
    /// `(point, trial)` cell derives its delivery and decision seeds from
    /// the base seed, so results are a pure function of the spec.
    fn dynamics_trials(
        &self,
        point: GridPoint,
        rule: RuleSpec,
        counts: &[usize],
        plurality: Opinion,
        budget: u64,
        noise: &NoiseMatrix,
    ) -> Result<DynamicsSummary, SpecError> {
        let spec = &self.spec;
        let resolved = spec.backend.resolve(
            point.n,
            point.k,
            spec.delivery,
            point.topology,
            point.fault,
            point.churn,
            point.clock,
        );
        let stop = dynamics_stop(budget, &spec.stop.to_condition());

        let mut consensus = 0u64;
        let mut correct = 0u64;
        let mut share = SampleStats::new();
        let mut rounds = SampleStats::new();
        for trial in 0..spec.trials {
            let config = SimConfig::builder(point.n, point.k)
                .seed(derive_seed(spec.seed, point.index, trial))
                .delivery(spec.delivery)
                .topology(point.topology)
                .build()?;
            let mut rng = StdRng::seed_from_u64(derive_seed(
                spec.seed ^ DECISION_SEED_SALT,
                point.index,
                trial,
            ));
            let outcome = match resolved {
                ExecutionBackend::Agent => {
                    let mut net = Network::new(config, noise.clone())?;
                    net.seed_counts(counts)?;
                    rule.build::<Network>().run_until(
                        &mut net,
                        &mut rng,
                        Some(plurality),
                        &stop,
                        &mut NoObserver,
                    )
                }
                ExecutionBackend::Counting => {
                    let mut net = CountingNetwork::new(config, noise.clone())?;
                    PushBackend::seed_counts(&mut net, counts)?;
                    rule.build::<CountingNetwork>().run_until(
                        &mut net,
                        &mut rng,
                        Some(plurality),
                        &stop,
                        &mut NoObserver,
                    )
                }
                ExecutionBackend::BlockCounting => {
                    let mut net = BlockCountingNetwork::new(config, noise.clone())?;
                    PushBackend::seed_counts(&mut net, counts)?;
                    rule.build::<BlockCountingNetwork>().run_until(
                        &mut net,
                        &mut rng,
                        Some(plurality),
                        &stop,
                        &mut NoObserver,
                    )
                }
                ExecutionBackend::Auto => unreachable!("resolve never returns Auto"),
            };
            if outcome.converged() {
                consensus += 1;
            }
            if outcome.winner() == Some(plurality) {
                correct += 1;
            }
            let dist = outcome.final_distribution();
            share.push(dist.counts()[plurality.index()] as f64 / dist.num_nodes() as f64);
            rounds.push(outcome.rounds() as f64);
        }
        Ok(DynamicsSummary {
            consensus: WilsonInterval::from_trials(consensus, spec.trials),
            correct: WilsonInterval::from_trials(correct, spec.trials),
            share,
            rounds,
        })
    }
}

/// The dynamics' effective stop condition: the round budget and consensus
/// (the classic behavior) plus whatever the spec's `stop.*` keys add.
fn dynamics_stop(budget: u64, extra: &StopCondition) -> StopCondition {
    let mut conditions = vec![
        StopCondition::MaxRounds(budget),
        StopCondition::ConsensusReached,
    ];
    if *extra != StopCondition::ScheduleExhausted {
        conditions.push(extra.clone());
    }
    StopCondition::Any(conditions)
}

/// Streams all rows of one completed point as JSON lines (ignoring write
/// errors: streaming is best-effort, the report is the source of truth).
fn emit_rows<W: Write + ?Sized>(out: &mut W, spec: &ScenarioSpec, result: &PointResult) {
    let headers = headers(spec);
    for row in point_rows(spec, result) {
        let _ = writeln!(out, "{}", json_line(&headers, &row));
    }
    let _ = out.flush();
}

fn non_empty_or<T: Copy>(values: &[T], base: T) -> Vec<T> {
    if values.is_empty() {
        vec![base]
    } else {
        values.to_vec()
    }
}

/// Expands a spec's sweep axes into the full grid (Cartesian product, axis
/// order `k`, `n`, `eps`, `bias`, `ell`, `delta`, `delivery`, `topology`,
/// `fault`, `churn`, `schedule`, `clock`). Shared by the [`Runner`] and
/// the campaign engine, so a
/// campaign cell index addresses exactly the point the plain runner would
/// execute at that index (and the scenario service's per-cell cache keys
/// address exactly these points).
pub fn expand_grid(spec: &ScenarioSpec) -> Vec<GridPoint> {
    let ks = non_empty_or(&spec.sweep.k, spec.k);
    let ns = non_empty_or(&spec.sweep.n, spec.n);
    let epss = non_empty_or(&spec.sweep.eps, spec.epsilon);
    let base_bias = match spec.kind.init() {
        Some(InitSpec::Biased { bias }) => Some(*bias),
        _ => None,
    };
    let biases: Vec<Option<f64>> = if spec.sweep.bias.is_empty() {
        vec![base_bias]
    } else {
        spec.sweep.bias.iter().map(|&b| Some(b)).collect()
    };
    let (base_ell, base_delta) = match spec.kind {
        ScenarioKind::SampleMajorityGap { ell, delta } => (Some(ell), Some(delta)),
        _ => (None, None),
    };
    let ells: Vec<Option<u64>> = if spec.sweep.ell.is_empty() {
        vec![base_ell]
    } else {
        spec.sweep.ell.iter().map(|&e| Some(e)).collect()
    };
    let deltas: Vec<Option<f64>> = if spec.sweep.delta.is_empty() {
        vec![base_delta]
    } else {
        spec.sweep.delta.iter().map(|&d| Some(d)).collect()
    };
    let deliveries = non_empty_or(&spec.sweep.delivery, spec.delivery);
    let topologies = non_empty_or(&spec.sweep.topology, spec.topology);
    let faults = non_empty_or(&spec.sweep.fault, spec.fault);
    let churns = non_empty_or(&spec.sweep.churn, spec.churn);
    let schedules = non_empty_or(&spec.sweep.schedule, spec.schedule);
    let clocks = non_empty_or(&spec.sweep.clock, spec.clock);

    let mut points = Vec::new();
    let mut index = 0usize;
    for &k in &ks {
        for &n in &ns {
            for &eps in &epss {
                for &bias in &biases {
                    for &ell in &ells {
                        for &delta in &deltas {
                            for &delivery in &deliveries {
                                for &topology in &topologies {
                                    for &fault in &faults {
                                        for &churn in &churns {
                                            for &schedule in &schedules {
                                                for &clock in &clocks {
                                                    points.push(GridPoint {
                                                        index,
                                                        k,
                                                        n,
                                                        eps,
                                                        bias,
                                                        ell,
                                                        delta,
                                                        delivery,
                                                        topology,
                                                        fault,
                                                        churn,
                                                        schedule,
                                                        clock,
                                                    });
                                                    index += 1;
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    points
}

/// Surfaces the protocol's own initial-counts validation as a recoverable
/// [`SpecError`] *before* entering the trial harness (whose entry points
/// treat invalid counts as a harness programming error and panic), and
/// returns the validated unique plurality opinion.
fn validate_counts(
    params: &ProtocolParams,
    noise: &NoiseMatrix,
    counts: &[usize],
) -> Result<Opinion, SpecError> {
    let protocol = TwoStageProtocol::new(params.clone(), noise.clone())?;
    Ok(protocol.validate_initial_counts(counts)?)
}

/// Materializes the initial counts of one grid point ([`InitSpec::Biased`]
/// uses the point's bias, which the bias axis may have overridden).
pub(crate) fn resolve_counts(init: &InitSpec, point: GridPoint) -> Vec<usize> {
    match init {
        InitSpec::Biased { bias } => {
            biased_counts(point.n, point.k, point.bias.unwrap_or(*bias))
        }
        InitSpec::Counts(counts) => counts.clone(),
    }
}

/// A δ-biased received distribution over `k` opinions: opinion 0 gets
/// `1/k + δ(k−1)/k`, every other opinion `1/k − δ/k`, so that the gap
/// between opinion 0 and any rival is exactly δ (the configuration
/// Proposition 1 is stated for).
fn biased_received_distribution(k: usize, delta: f64) -> Vec<f64> {
    let base = 1.0 / k as f64;
    let mut dist = vec![base - delta / k as f64; k];
    dist[0] = base + delta * (k as f64 - 1.0) / k as f64;
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{InitSpec, Metric, ScenarioKind, ScenarioSpec, StopSpec};
    use noisy_channel::NoiseSpec;

    fn quick_spec(kind: ScenarioKind) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(kind, 400, 2);
        spec.epsilon = 0.3;
        spec.noise = NoiseSpec::Uniform { epsilon: 0.3 };
        spec.trials = 2;
        spec.seed = 11;
        spec
    }

    #[test]
    fn single_point_rumor_run_reports_one_row() {
        let spec = quick_spec(ScenarioKind::RumorSpreading { source: 0 });
        let report = Runner::new(spec).unwrap().run().unwrap();
        assert_eq!(report.points().len(), 1);
        let PointSummary::Protocol(summary) = &report.points()[0].summary else {
            panic!("rumor scenarios produce protocol summaries");
        };
        assert_eq!(summary.success.trials(), 2);
        let table = report.to_table();
        // No swept axis: only the four default metric columns.
        assert_eq!(table.headers().len(), 4);
        assert_eq!(table.num_rows(), 1);
    }

    #[test]
    fn sweeps_expand_to_the_cartesian_product_in_axis_order() {
        let mut spec = quick_spec(ScenarioKind::PluralityConsensus {
            init: InitSpec::Biased { bias: 0.2 },
        });
        spec.sweep.k = vec![2, 3];
        spec.sweep.bias = vec![0.1, 0.3];
        spec.metrics = vec![Metric::Success];
        let report = Runner::new(spec).unwrap().run().unwrap();
        assert_eq!(report.points().len(), 4);
        let points: Vec<(usize, f64)> = report
            .points()
            .iter()
            .map(|p| (p.point.k, p.point.bias.unwrap()))
            .collect();
        assert_eq!(points, vec![(2, 0.1), (2, 0.3), (3, 0.1), (3, 0.3)]);
        let table = report.to_table();
        assert_eq!(
            table.headers(),
            &["k".to_string(), "bias".to_string(), "success".to_string()]
        );
        assert_eq!(table.rows()[1][1], "0.3000");
    }

    #[test]
    fn runs_are_deterministic_in_the_spec() {
        let mut spec = quick_spec(ScenarioKind::DynamicsRule {
            rule: opinion_dynamics::RuleSpec::ThreeMajority,
            init: InitSpec::Biased { bias: 0.3 },
            rounds: Some(300),
        });
        spec.backend = ExecutionBackend::Agent;
        let a = Runner::new(spec.clone()).unwrap().run().unwrap().to_table();
        let b = Runner::new(spec).unwrap().run().unwrap().to_table();
        assert_eq!(a, b);
    }

    #[test]
    fn dynamics_run_on_both_backends() {
        for backend in [ExecutionBackend::Agent, ExecutionBackend::Counting] {
            let mut spec = quick_spec(ScenarioKind::DynamicsRule {
                rule: opinion_dynamics::RuleSpec::Voter,
                init: InitSpec::Counts(vec![300, 100]),
                rounds: Some(200),
            });
            spec.backend = backend;
            if backend == ExecutionBackend::Counting {
                spec.delivery = pushsim::DeliverySemantics::Poissonized;
            }
            let report = Runner::new(spec).unwrap().run().unwrap();
            let PointSummary::Dynamics(summary) = &report.points()[0].summary else {
                panic!("dynamics scenarios produce dynamics summaries");
            };
            assert_eq!(summary.share.len(), 2);
        }
    }

    #[test]
    fn stage2_only_scenarios_run() {
        let spec = quick_spec(ScenarioKind::Stage2Only {
            init: InitSpec::Biased { bias: 0.3 },
        });
        let report = Runner::new(spec).unwrap().run().unwrap();
        let PointSummary::Protocol(summary) = &report.points()[0].summary else {
            panic!("stage2 scenarios produce protocol summaries");
        };
        assert_eq!(summary.rounds.len(), 2);
        // Stage 2 alone has no stage-1 records, so the bias stats are empty
        // and the metric renders as "-".
        assert_eq!(summary.stage1_bias.len(), 0);
    }

    #[test]
    fn invalid_counts_surface_as_spec_errors_not_panics() {
        // Tied counts are rejected statically (the reference plurality
        // would be arbitrary).
        let spec = quick_spec(ScenarioKind::PluralityConsensus {
            init: InitSpec::Counts(vec![100, 100]),
        });
        assert!(matches!(
            Runner::new(spec),
            Err(crate::spec::SpecError::Invalid(_))
        ));

        // Counts that pass static validation but violate the protocol's
        // n-dependent rules fail as a recoverable error at run time.
        for kind in [
            ScenarioKind::PluralityConsensus {
                init: InitSpec::Counts(vec![900, 100]),
            },
            ScenarioKind::Stage2Only {
                init: InitSpec::Counts(vec![900, 100]),
            },
            ScenarioKind::DynamicsRule {
                rule: opinion_dynamics::RuleSpec::Voter,
                init: InitSpec::Counts(vec![900, 100]),
                rounds: Some(10),
            },
        ] {
            let spec = quick_spec(kind); // n = 400 < 900 + 100
            let result = Runner::new(spec).unwrap().run();
            assert!(
                matches!(result, Err(crate::spec::SpecError::Protocol(_))),
                "oversized counts must fail cleanly"
            );
        }
    }

    #[test]
    fn eps_sweep_reparameterizes_eps_noise_families() {
        let mut spec = quick_spec(ScenarioKind::RumorSpreading { source: 0 });
        spec.sweep.eps = vec![0.2, 0.4];
        let report = Runner::new(spec).unwrap().run().unwrap();
        assert_eq!(report.points().len(), 2);
        // Higher eps => cleaner channel => no more rounds than the noisier
        // point (the schedule is shorter).
        let rounds: Vec<f64> = report
            .points()
            .iter()
            .map(|p| match &p.summary {
                PointSummary::Protocol(s) => s.rounds.mean(),
                _ => unreachable!(),
            })
            .collect();
        assert!(rounds[0] > rounds[1]);
    }

    #[test]
    fn gap_scenarios_sweep_k_ell_delta_and_check_the_bound() {
        let mut spec = quick_spec(ScenarioKind::SampleMajorityGap {
            ell: 25,
            delta: 0.1,
        });
        spec.trials = 20_000;
        spec.sweep.k = vec![2, 3];
        spec.sweep.ell = vec![9, 25];
        spec.sweep.delta = vec![0.05, 0.2];
        let report = Runner::new(spec).unwrap().run().unwrap();
        assert_eq!(report.points().len(), 8);
        for point in report.points() {
            let PointSummary::Gap(gap) = &point.summary else {
                panic!("gap scenarios produce gap summaries");
            };
            assert!(gap.holds, "Proposition 1 must hold at {:?}", point.point);
            assert_eq!(gap.exact.is_some(), point.point.k == 2);
            if let Some(exact) = gap.exact {
                assert!(
                    (gap.measured - exact).abs() < 0.05,
                    "Monte-Carlo ({}) far from exact ({exact})",
                    gap.measured
                );
            }
        }
        let table = report.to_table();
        assert_eq!(table.headers()[..3], ["k", "ell", "delta"].map(String::from));
        assert_eq!(table.num_rows(), 8);
    }

    #[test]
    fn phase_scenarios_sweep_the_delivery_process() {
        let mut spec = quick_spec(ScenarioKind::PhaseStats {
            rounds: 5,
            init: InitSpec::Counts(vec![200, 100]),
        });
        spec.trials = 3;
        spec.sweep.delivery = DeliverySemantics::ALL.to_vec();
        let report = Runner::new(spec).unwrap().run().unwrap();
        assert_eq!(report.points().len(), 3);
        for point in report.points() {
            let PointSummary::PhaseStats(stats) = &point.summary else {
                panic!("phase scenarios produce phase summaries");
            };
            assert_eq!(stats.total.len(), 3);
            // 5 rounds × 300 pushers per trial for processes O and B; the
            // Poissonized totals fluctuate around it.
            assert!(stats.total.mean() > 1_000.0);
            let frac = stats.frac_received.mean();
            assert!((0.0..=1.0).contains(&frac) && frac > 0.5);
            let adopt = stats.adopt0.mean();
            // Opinion 0 holds 2/3 of the pushers; noise pulls the adopters
            // towards it but not all the way.
            assert!(adopt > 0.4 && adopt < 0.9, "adopt0 = {adopt}");
        }
        let table = report.to_table();
        assert_eq!(table.headers()[0], "delivery");
        assert_eq!(table.rows()[0][0], "exact");
        assert_eq!(table.rows()[2][0], "poisson");
    }

    #[test]
    fn topology_sweeps_expand_and_label_their_rows() {
        let mut spec = quick_spec(ScenarioKind::PluralityConsensus {
            init: InitSpec::Biased { bias: 0.3 },
        });
        spec.n = 400;
        spec.metrics = vec![Metric::Success, Metric::Share];
        spec.sweep.topology = vec![
            TopologySpec::Complete,
            TopologySpec::Ring,
            TopologySpec::RandomRegular { degree: 8 },
        ];
        let report = Runner::new(spec).unwrap().run().unwrap();
        assert_eq!(report.points().len(), 3);
        let table = report.to_table();
        assert_eq!(
            table.headers(),
            &[
                "topology".to_string(),
                "success".to_string(),
                "mean plurality share".to_string()
            ]
        );
        assert_eq!(table.rows()[0][0], "complete");
        assert_eq!(table.rows()[1][0], "ring");
        assert_eq!(table.rows()[2][0], "regular(8)");
        for point in report.points() {
            let PointSummary::Protocol(summary) = &point.summary else {
                panic!("plurality scenarios produce protocol summaries");
            };
            assert_eq!(summary.success.trials(), 2);
        }
        // The complete-graph point behaves like a topology-free run of the
        // same spec (same seeds, same RNG streams).
        let mut plain = quick_spec(ScenarioKind::PluralityConsensus {
            init: InitSpec::Biased { bias: 0.3 },
        });
        plain.n = 400;
        plain.metrics = vec![Metric::Success, Metric::Share];
        let plain_report = Runner::new(plain).unwrap().run().unwrap();
        assert_eq!(
            plain_report.to_table().rows()[0],
            table.rows()[0][1..].to_vec(),
            "complete sweep point ≡ unswept run"
        );
    }

    #[test]
    fn trajectory_mode_with_a_topology_sweep_has_one_topology_column() {
        // The swept axis and the canonical trajectory column would
        // otherwise both emit a "topology" key — duplicate keys in one
        // JSON object break strict parsers.
        let mut spec = quick_spec(ScenarioKind::RumorSpreading { source: 0 });
        spec.trials = 1;
        spec.observe = ObserveMode::Trajectory;
        spec.sweep.topology = vec![TopologySpec::Complete, TopologySpec::Ring];
        let runner = Runner::new(spec).unwrap();
        let headers = runner.headers();
        assert_eq!(
            headers.iter().filter(|h| *h == "topology").count(),
            1,
            "exactly one topology column: {headers:?}"
        );
        let mut out = Vec::new();
        let report = runner.run_streamed(&mut out).unwrap();
        let streamed = String::from_utf8(out).unwrap();
        assert_eq!(streamed, report.to_table().to_json_lines());
        // Every streamed row has exactly one "topology" key, labelled by
        // its point's graph.
        for line in streamed.lines() {
            assert_eq!(line.matches("\"topology\":").count(), 1, "{line}");
        }
        let table = report.to_table();
        let col = table.column_index("topology").unwrap();
        let labels: std::collections::HashSet<&str> =
            table.rows().iter().map(|r| r[col].as_str()).collect();
        assert_eq!(
            labels,
            ["complete", "ring"].into_iter().collect(),
            "both sweep points appear, each with its own label"
        );
    }

    #[test]
    fn trajectory_rows_carry_the_topology_label() {
        let mut spec = quick_spec(ScenarioKind::RumorSpreading { source: 0 });
        spec.trials = 1;
        spec.topology = TopologySpec::RandomRegular { degree: 8 };
        spec.observe = ObserveMode::Trajectory;
        let report = Runner::new(spec).unwrap().run().unwrap();
        let table = report.to_table();
        let topology_col = table.column_index("topology").unwrap();
        assert!(table.num_rows() > 0);
        for row in table.rows() {
            assert_eq!(row[topology_col], "regular(8)");
        }
    }

    #[test]
    fn trajectory_mode_reports_per_phase_rows() {
        let mut spec = quick_spec(ScenarioKind::RumorSpreading { source: 0 });
        spec.trials = 1;
        spec.observe = ObserveMode::Trajectory;
        let report = Runner::new(spec).unwrap().run().unwrap();
        let PointSummary::Trajectory(set) = &report.points()[0].summary else {
            panic!("trajectory mode produces trajectory summaries");
        };
        assert_eq!(set.trials.len(), 1);
        assert!(!set.trials[0].is_empty());
        let table = report.to_table();
        assert_eq!(table.headers(), &TRAJECTORY_HEADERS.map(String::from));
        assert_eq!(table.num_rows(), set.trials[0].len());
        // Two trials add a trial column.
        let mut spec = quick_spec(ScenarioKind::RumorSpreading { source: 0 });
        spec.trials = 2;
        spec.observe = ObserveMode::Trajectory;
        let runner = Runner::new(spec).unwrap();
        assert_eq!(runner.headers()[0], "trial");
        let table = runner.run().unwrap().to_table();
        assert_eq!(table.rows()[0][0], "0");
    }

    #[test]
    fn phases_mode_aggregates_across_trials() {
        let mut spec = quick_spec(ScenarioKind::RumorSpreading { source: 0 });
        spec.trials = 3;
        spec.observe = ObserveMode::Phases;
        let report = Runner::new(spec).unwrap().run().unwrap();
        let PointSummary::Phases(stats) = &report.points()[0].summary else {
            panic!("phases mode produces aggregate summaries");
        };
        assert_eq!(stats.runs(), 3);
        assert!(!stats.phases().is_empty());
        assert_eq!(stats.phases()[0].opinionated.len(), 3);
        let table = report.to_table();
        assert_eq!(table.num_rows(), stats.phases().len());
    }

    #[test]
    fn stop_conditions_truncate_protocol_schedules() {
        let full = quick_spec(ScenarioKind::RumorSpreading { source: 0 });
        let full_report = Runner::new(full.clone()).unwrap().run().unwrap();
        let PointSummary::Protocol(full_summary) = &full_report.points()[0].summary else {
            unreachable!()
        };
        let mut stopped = full;
        stopped.stop = StopSpec {
            max_rounds: Some(10),
            ..StopSpec::default()
        };
        let report = Runner::new(stopped).unwrap().run().unwrap();
        let PointSummary::Protocol(summary) = &report.points()[0].summary else {
            unreachable!()
        };
        assert!(
            summary.rounds.mean() < full_summary.rounds.mean(),
            "stop.max_rounds must truncate the schedule ({} vs {})",
            summary.rounds.mean(),
            full_summary.rounds.mean()
        );
    }

    #[test]
    fn streamed_rows_match_the_final_table() {
        let mut spec = quick_spec(ScenarioKind::RumorSpreading { source: 0 });
        spec.sweep.eps = vec![0.3, 0.4];
        let runner = Runner::new(spec).unwrap();
        let mut out = Vec::new();
        let report = runner.run_streamed(&mut out).unwrap();
        let streamed = String::from_utf8(out).unwrap();
        assert_eq!(streamed, report.to_table().to_json_lines());
        assert_eq!(streamed.lines().count(), 2);
    }

    #[test]
    fn streamed_trajectories_emit_rows_live_and_match_the_table() {
        let mut spec = quick_spec(ScenarioKind::RumorSpreading { source: 0 });
        spec.trials = 2;
        spec.observe = ObserveMode::Trajectory;
        let runner = Runner::new(spec).unwrap();
        let mut out = Vec::new();
        let report = runner.run_streamed(&mut out).unwrap();
        let streamed = String::from_utf8(out).unwrap();
        assert_eq!(streamed, report.to_table().to_json_lines());
        assert!(streamed.lines().count() > 2, "one row per phase per trial");
        assert!(streamed.lines().all(|l| l.starts_with("{\"trial\":")));
    }

    #[test]
    fn streamed_phase_aggregates_match_the_final_table() {
        // Phases mode cannot stream live (aggregates only exist once the
        // trials are done); its rows stream per completed point and must
        // still match the final table byte for byte.
        let mut spec = quick_spec(ScenarioKind::RumorSpreading { source: 0 });
        spec.trials = 2;
        spec.observe = ObserveMode::Phases;
        let runner = Runner::new(spec).unwrap();
        let mut out = Vec::new();
        let report = runner.run_streamed(&mut out).unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            report.to_table().to_json_lines()
        );
    }

    #[test]
    fn observed_runs_leave_outcomes_bit_identical() {
        // The same spec through the summary path and the trajectory path:
        // rounds/phase counts must agree because observation is RNG-free.
        let base = quick_spec(ScenarioKind::PluralityConsensus {
            init: InitSpec::Biased { bias: 0.3 },
        });
        let summary_report = Runner::new(base.clone()).unwrap().run().unwrap();
        let PointSummary::Protocol(summary) = &summary_report.points()[0].summary else {
            unreachable!()
        };
        let mut observed = base;
        observed.observe = ObserveMode::Trajectory;
        let report = Runner::new(observed).unwrap().run().unwrap();
        let PointSummary::Trajectory(set) = &report.points()[0].summary else {
            unreachable!()
        };
        for recorder in &set.trials {
            let total: u64 = recorder.snapshots().iter().map(|s| s.rounds()).sum();
            assert_eq!(total as f64, summary.rounds.mean(), "same schedule executed");
        }
    }
}
