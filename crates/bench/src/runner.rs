//! Execution of [`ScenarioSpec`]s through the generic protocol/dynamics
//! stack.
//!
//! A [`Runner`] expands a spec's sweep axes into a grid (Cartesian product,
//! axis order `k`, `n`, `eps`, `bias`), executes every point for the
//! requested number of trials on the requested [`ExecutionBackend`], and
//! returns a structured [`RunReport`]. [`RunReport::to_table`] renders the
//! report with the spec's metric columns; callers that need bespoke tables
//! (the registry's composite experiments) read the typed summaries
//! directly.
//!
//! Protocol scenarios run through the shared parallel trial harness
//! ([`rumor_spreading_trials_from`] and
//! friends), so their statistics are bit-identical to the pre-spec harness
//! for the same parameters and seed. Dynamics scenarios derive one seed per
//! `(point, trial)` cell with [`derive_seed`] and are likewise
//! deterministic in the base seed.

use crate::spec::{InitSpec, Metric, ScenarioKind, ScenarioSpec, SpecError};
use crate::{
    biased_counts, plurality_trials_on, rumor_spreading_trials_from, stage2_only_trials_on,
    TrialSummary,
};
use gossip_analysis::ci::WilsonInterval;
use gossip_analysis::stats::SampleStats;
use gossip_analysis::sweep::derive_seed;
use gossip_analysis::table::Table;
use noisy_channel::NoiseMatrix;
use opinion_dynamics::RuleSpec;
use plurality_core::{bounds, ExecutionBackend, ProtocolParams, TwoStageProtocol};
use pushsim::{CountingNetwork, Network, Opinion, PushBackend, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Salt mixed into the base seed for dynamics decision randomness, so the
/// decision RNG stream is unrelated to the delivery RNG stream.
const DECISION_SEED_SALT: u64 = 0xD0_0DAD;

/// One grid point of a sweep: the resolved parameter values and the point's
/// position in the grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Index of the point in row order.
    pub index: usize,
    /// Opinion count at this point.
    pub k: usize,
    /// Network size at this point.
    pub n: usize,
    /// Schedule ε at this point.
    pub eps: f64,
    /// Initial bias at this point (scenarios with a biased initial
    /// configuration only).
    pub bias: Option<f64>,
}

/// Aggregated result of a dynamics scenario at one grid point.
#[derive(Debug, Clone)]
pub struct DynamicsSummary {
    /// Exact-consensus rate over the trials.
    pub consensus: WilsonInterval,
    /// Rate at which the plurality opinion won.
    pub correct: WilsonInterval,
    /// Final share of the plurality opinion.
    pub share: SampleStats,
    /// Rounds executed.
    pub rounds: SampleStats,
}

/// The per-point result: protocol scenarios aggregate a [`TrialSummary`],
/// dynamics scenarios a [`DynamicsSummary`].
#[derive(Debug, Clone)]
pub enum PointSummary {
    /// Result of a rumor / plurality / stage2 scenario.
    Protocol(TrialSummary),
    /// Result of a dynamics scenario.
    Dynamics(DynamicsSummary),
}

/// One executed grid point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Where in the grid this result sits.
    pub point: GridPoint,
    /// The aggregated trial statistics.
    pub summary: PointSummary,
}

/// The structured outcome of executing a [`ScenarioSpec`].
#[derive(Debug, Clone)]
pub struct RunReport {
    spec: ScenarioSpec,
    points: Vec<PointResult>,
}

impl RunReport {
    /// The spec this report was produced from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The executed grid points, in row order.
    pub fn points(&self) -> &[PointResult] {
        &self.points
    }

    /// Renders the report as a table: one column per swept axis (in axis
    /// order `k`, `n`, `eps`, `bias`) followed by the spec's metric
    /// columns.
    pub fn to_table(&self) -> Table {
        let metrics = self.spec.effective_metrics();
        let sweep = &self.spec.sweep;
        let axes: [(&str, bool); 4] = [
            ("k", !sweep.k.is_empty()),
            ("n", !sweep.n.is_empty()),
            ("eps", !sweep.eps.is_empty()),
            ("bias", !sweep.bias.is_empty()),
        ];
        let mut headers: Vec<String> = axes
            .iter()
            .filter(|(_, shown)| *shown)
            .map(|(name, _)| name.to_string())
            .collect();
        headers.extend(metrics.iter().map(|m| m.header().to_string()));
        let mut table = Table::new(headers);
        for result in &self.points {
            let point = &result.point;
            let mut row = Vec::new();
            if axes[0].1 {
                row.push(point.k.to_string());
            }
            if axes[1].1 {
                row.push(point.n.to_string());
            }
            if axes[2].1 {
                row.push(format!("{}", point.eps));
            }
            if axes[3].1 {
                row.push(format!("{:.4}", point.bias.unwrap_or(f64::NAN)));
            }
            for &metric in &metrics {
                row.push(format_metric(metric, result));
            }
            table.push_row(row);
        }
        table
    }
}

/// Renders one metric cell for one executed point.
fn format_metric(metric: Metric, result: &PointResult) -> String {
    let point = &result.point;
    let mean_or_dash = |stats: &SampleStats, render: &dyn Fn(f64) -> String| {
        if stats.is_empty() {
            "-".to_string()
        } else {
            render(stats.mean())
        }
    };
    match &result.summary {
        PointSummary::Protocol(s) => match metric {
            Metric::Success => s.success.to_string(),
            Metric::Rounds => format!("{:.0}", s.rounds.mean()),
            Metric::RoundsNorm => {
                format!("{:.2}", s.rounds.mean() / bounds::rounds_bound(point.n, point.eps))
            }
            Metric::Messages => format!("{:.2e}", s.messages.mean()),
            Metric::Stage1Bias => mean_or_dash(&s.stage1_bias, &|m| format!("{m:.4}")),
            Metric::Stage1BiasNorm => {
                let threshold = ((point.n as f64).ln() / point.n as f64).sqrt();
                mean_or_dash(&s.stage1_bias, &|m| format!("{:.2}", m / threshold))
            }
            Metric::MemoryBits => format!("{:.1}", s.memory_bits.mean()),
            Metric::Consensus => s.consensus.to_string(),
            Metric::Correct => s.correct.to_string(),
            Metric::Share => format!("{:.3}", s.share.mean()),
        },
        PointSummary::Dynamics(s) => match metric {
            Metric::Consensus => s.consensus.to_string(),
            Metric::Correct => s.correct.to_string(),
            Metric::Share => format!("{:.3}", s.share.mean()),
            Metric::Rounds => format!("{:.0}", s.rounds.mean()),
            // validate() rejects protocol-only metrics on dynamics specs.
            other => unreachable!("metric {other} on a dynamics scenario"),
        },
    }
}

/// Executes a validated [`ScenarioSpec`].
#[derive(Debug, Clone)]
pub struct Runner {
    spec: ScenarioSpec,
}

impl Runner {
    /// Validates the spec and prepares a runner for it.
    ///
    /// # Errors
    ///
    /// Returns the spec's [`validate`](ScenarioSpec::validate) error.
    pub fn new(spec: ScenarioSpec) -> Result<Self, SpecError> {
        spec.validate()?;
        Ok(Self { spec })
    }

    /// The spec this runner executes.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Executes every grid point and returns the structured report.
    ///
    /// # Errors
    ///
    /// Propagates parameter/noise/simulator construction failures for the
    /// offending grid point ([`SpecError::Protocol`], [`SpecError::Noise`],
    /// [`SpecError::Sim`]).
    pub fn run(&self) -> Result<RunReport, SpecError> {
        let spec = &self.spec;
        let ks = non_empty_or(&spec.sweep.k, spec.k);
        let ns = non_empty_or(&spec.sweep.n, spec.n);
        let epss = non_empty_or(&spec.sweep.eps, spec.epsilon);
        let base_bias = match spec.kind.init() {
            Some(InitSpec::Biased { bias }) => Some(*bias),
            _ => None,
        };
        let biases: Vec<Option<f64>> = if spec.sweep.bias.is_empty() {
            vec![base_bias]
        } else {
            spec.sweep.bias.iter().map(|&b| Some(b)).collect()
        };
        let eps_swept = !spec.sweep.eps.is_empty();

        let mut points = Vec::new();
        let mut index = 0usize;
        for &k in &ks {
            for &n in &ns {
                for &eps in &epss {
                    for &bias in &biases {
                        let point = GridPoint { index, k, n, eps, bias };
                        let summary = self.run_point(point, eps_swept)?;
                        points.push(PointResult { point, summary });
                        index += 1;
                    }
                }
            }
        }
        Ok(RunReport {
            spec: spec.clone(),
            points,
        })
    }

    fn run_point(&self, point: GridPoint, eps_swept: bool) -> Result<PointSummary, SpecError> {
        let spec = &self.spec;
        let GridPoint { k, n, eps, .. } = point;
        let params = ProtocolParams::builder(n, k)
            .epsilon(eps)
            .seed(spec.seed)
            .delivery(spec.delivery)
            .constants(spec.constants)
            .build()?;
        let noise_spec = if eps_swept {
            spec.noise.with_epsilon(eps)
        } else {
            spec.noise.clone()
        };
        let noise = noise_spec.build(k)?;

        Ok(match &spec.kind {
            ScenarioKind::RumorSpreading { source } => PointSummary::Protocol(
                rumor_spreading_trials_from(
                    spec.backend,
                    &params,
                    &noise,
                    Opinion::new(*source),
                    spec.trials,
                ),
            ),
            ScenarioKind::PluralityConsensus { init } => {
                let counts = resolve_counts(init, point);
                validate_counts(&params, &noise, &counts)?;
                PointSummary::Protocol(plurality_trials_on(
                    spec.backend,
                    &params,
                    &noise,
                    &counts,
                    spec.trials,
                ))
            }
            ScenarioKind::Stage2Only { init } => {
                let counts = resolve_counts(init, point);
                validate_counts(&params, &noise, &counts)?;
                PointSummary::Protocol(stage2_only_trials_on(
                    spec.backend,
                    &params,
                    &noise,
                    &counts,
                    spec.trials,
                ))
            }
            ScenarioKind::DynamicsRule { rule, init, rounds } => {
                let counts = resolve_counts(init, point);
                let plurality = validate_counts(&params, &noise, &counts)?;
                let budget = rounds.unwrap_or_else(|| params.schedule().total_rounds());
                PointSummary::Dynamics(self.dynamics_trials(
                    point, *rule, &counts, plurality, budget, &noise,
                )?)
            }
        })
    }

    /// Runs the dynamics rule for every trial of one grid point. Each
    /// `(point, trial)` cell derives its delivery and decision seeds from
    /// the base seed, so results are a pure function of the spec.
    fn dynamics_trials(
        &self,
        point: GridPoint,
        rule: RuleSpec,
        counts: &[usize],
        plurality: Opinion,
        budget: u64,
        noise: &NoiseMatrix,
    ) -> Result<DynamicsSummary, SpecError> {
        let spec = &self.spec;
        let resolved = spec.backend.resolve(point.n, point.k, spec.delivery);

        let mut consensus = 0u64;
        let mut correct = 0u64;
        let mut share = SampleStats::new();
        let mut rounds = SampleStats::new();
        for trial in 0..spec.trials {
            let config = SimConfig::builder(point.n, point.k)
                .seed(derive_seed(spec.seed, point.index, trial))
                .delivery(spec.delivery)
                .build()?;
            let mut rng = StdRng::seed_from_u64(derive_seed(
                spec.seed ^ DECISION_SEED_SALT,
                point.index,
                trial,
            ));
            let outcome = match resolved {
                ExecutionBackend::Agent => {
                    let mut net = Network::new(config, noise.clone())?;
                    run_dynamics_once(&mut net, rule, counts, &mut rng, budget)?
                }
                ExecutionBackend::Counting => {
                    let mut net = CountingNetwork::new(config, noise.clone())?;
                    run_dynamics_once(&mut net, rule, counts, &mut rng, budget)?
                }
                ExecutionBackend::Auto => unreachable!("resolve never returns Auto"),
            };
            if outcome.converged() {
                consensus += 1;
            }
            if outcome.winner() == Some(plurality) {
                correct += 1;
            }
            let dist = outcome.final_distribution();
            share.push(dist.counts()[plurality.index()] as f64 / dist.num_nodes() as f64);
            rounds.push(outcome.rounds() as f64);
        }
        Ok(DynamicsSummary {
            consensus: WilsonInterval::from_trials(consensus, spec.trials),
            correct: WilsonInterval::from_trials(correct, spec.trials),
            share,
            rounds,
        })
    }
}

fn run_dynamics_once<B: PushBackend>(
    net: &mut B,
    rule: RuleSpec,
    counts: &[usize],
    rng: &mut StdRng,
    budget: u64,
) -> Result<opinion_dynamics::DynamicsOutcome, SpecError> {
    net.seed_counts(counts)?;
    Ok(rule.build::<B>().run(net, rng, budget))
}

fn non_empty_or<T: Copy>(values: &[T], base: T) -> Vec<T> {
    if values.is_empty() {
        vec![base]
    } else {
        values.to_vec()
    }
}

/// Surfaces the protocol's own initial-counts validation as a recoverable
/// [`SpecError`] *before* entering the trial harness (whose entry points
/// treat invalid counts as a harness programming error and panic), and
/// returns the validated unique plurality opinion.
fn validate_counts(
    params: &ProtocolParams,
    noise: &NoiseMatrix,
    counts: &[usize],
) -> Result<Opinion, SpecError> {
    let protocol = TwoStageProtocol::new(params.clone(), noise.clone())?;
    Ok(protocol.validate_initial_counts(counts)?)
}

/// Materializes the initial counts of one grid point ([`InitSpec::Biased`]
/// uses the point's bias, which the bias axis may have overridden).
fn resolve_counts(init: &InitSpec, point: GridPoint) -> Vec<usize> {
    match init {
        InitSpec::Biased { bias } => {
            biased_counts(point.n, point.k, point.bias.unwrap_or(*bias))
        }
        InitSpec::Counts(counts) => counts.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{InitSpec, Metric, ScenarioKind, ScenarioSpec};
    use noisy_channel::NoiseSpec;

    fn quick_spec(kind: ScenarioKind) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(kind, 400, 2);
        spec.epsilon = 0.3;
        spec.noise = NoiseSpec::Uniform { epsilon: 0.3 };
        spec.trials = 2;
        spec.seed = 11;
        spec
    }

    #[test]
    fn single_point_rumor_run_reports_one_row() {
        let spec = quick_spec(ScenarioKind::RumorSpreading { source: 0 });
        let report = Runner::new(spec).unwrap().run().unwrap();
        assert_eq!(report.points().len(), 1);
        let PointSummary::Protocol(summary) = &report.points()[0].summary else {
            panic!("rumor scenarios produce protocol summaries");
        };
        assert_eq!(summary.success.trials(), 2);
        let table = report.to_table();
        // No swept axis: only the four default metric columns.
        assert_eq!(table.headers().len(), 4);
        assert_eq!(table.num_rows(), 1);
    }

    #[test]
    fn sweeps_expand_to_the_cartesian_product_in_axis_order() {
        let mut spec = quick_spec(ScenarioKind::PluralityConsensus {
            init: InitSpec::Biased { bias: 0.2 },
        });
        spec.sweep.k = vec![2, 3];
        spec.sweep.bias = vec![0.1, 0.3];
        spec.metrics = vec![Metric::Success];
        let report = Runner::new(spec).unwrap().run().unwrap();
        assert_eq!(report.points().len(), 4);
        let points: Vec<(usize, f64)> = report
            .points()
            .iter()
            .map(|p| (p.point.k, p.point.bias.unwrap()))
            .collect();
        assert_eq!(points, vec![(2, 0.1), (2, 0.3), (3, 0.1), (3, 0.3)]);
        let table = report.to_table();
        assert_eq!(
            table.headers(),
            &["k".to_string(), "bias".to_string(), "success".to_string()]
        );
        assert_eq!(table.rows()[1][1], "0.3000");
    }

    #[test]
    fn runs_are_deterministic_in_the_spec() {
        let mut spec = quick_spec(ScenarioKind::DynamicsRule {
            rule: opinion_dynamics::RuleSpec::ThreeMajority,
            init: InitSpec::Biased { bias: 0.3 },
            rounds: Some(300),
        });
        spec.backend = ExecutionBackend::Agent;
        let a = Runner::new(spec.clone()).unwrap().run().unwrap().to_table();
        let b = Runner::new(spec).unwrap().run().unwrap().to_table();
        assert_eq!(a, b);
    }

    #[test]
    fn dynamics_run_on_both_backends() {
        for backend in [ExecutionBackend::Agent, ExecutionBackend::Counting] {
            let mut spec = quick_spec(ScenarioKind::DynamicsRule {
                rule: opinion_dynamics::RuleSpec::Voter,
                init: InitSpec::Counts(vec![300, 100]),
                rounds: Some(200),
            });
            spec.backend = backend;
            if backend == ExecutionBackend::Counting {
                spec.delivery = pushsim::DeliverySemantics::Poissonized;
            }
            let report = Runner::new(spec).unwrap().run().unwrap();
            let PointSummary::Dynamics(summary) = &report.points()[0].summary else {
                panic!("dynamics scenarios produce dynamics summaries");
            };
            assert_eq!(summary.share.len(), 2);
        }
    }

    #[test]
    fn stage2_only_scenarios_run() {
        let spec = quick_spec(ScenarioKind::Stage2Only {
            init: InitSpec::Biased { bias: 0.3 },
        });
        let report = Runner::new(spec).unwrap().run().unwrap();
        let PointSummary::Protocol(summary) = &report.points()[0].summary else {
            panic!("stage2 scenarios produce protocol summaries");
        };
        assert_eq!(summary.rounds.len(), 2);
        // Stage 2 alone has no stage-1 records, so the bias stats are empty
        // and the metric renders as "-".
        assert_eq!(summary.stage1_bias.len(), 0);
    }

    #[test]
    fn invalid_counts_surface_as_spec_errors_not_panics() {
        // Tied counts are rejected statically (the reference plurality
        // would be arbitrary).
        let spec = quick_spec(ScenarioKind::PluralityConsensus {
            init: InitSpec::Counts(vec![100, 100]),
        });
        assert!(matches!(
            Runner::new(spec),
            Err(crate::spec::SpecError::Invalid(_))
        ));

        // Counts that pass static validation but violate the protocol's
        // n-dependent rules fail as a recoverable error at run time.
        for kind in [
            ScenarioKind::PluralityConsensus {
                init: InitSpec::Counts(vec![900, 100]),
            },
            ScenarioKind::Stage2Only {
                init: InitSpec::Counts(vec![900, 100]),
            },
            ScenarioKind::DynamicsRule {
                rule: opinion_dynamics::RuleSpec::Voter,
                init: InitSpec::Counts(vec![900, 100]),
                rounds: Some(10),
            },
        ] {
            let spec = quick_spec(kind); // n = 400 < 900 + 100
            let result = Runner::new(spec).unwrap().run();
            assert!(
                matches!(result, Err(crate::spec::SpecError::Protocol(_))),
                "oversized counts must fail cleanly"
            );
        }
    }

    #[test]
    fn eps_sweep_reparameterizes_eps_noise_families() {
        let mut spec = quick_spec(ScenarioKind::RumorSpreading { source: 0 });
        spec.sweep.eps = vec![0.2, 0.4];
        let report = Runner::new(spec).unwrap().run().unwrap();
        assert_eq!(report.points().len(), 2);
        // Higher eps => cleaner channel => no more rounds than the noisier
        // point (the schedule is shorter).
        let rounds: Vec<f64> = report
            .points()
            .iter()
            .map(|p| match &p.summary {
                PointSummary::Protocol(s) => s.rounds.mean(),
                _ => unreachable!(),
            })
            .collect();
        assert!(rounds[0] > rounds[1]);
    }
}
