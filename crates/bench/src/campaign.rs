//! Fault-injection campaign engine: (spec grid × seed range) sweeps with
//! invariant oracles and first-failing-seed replay.
//!
//! A campaign takes a protocol [`ScenarioSpec`] — typically one with a
//! `sweep.fault` axis — and runs every grid cell over a range of derived
//! seeds. Each run is watched by an [`OracleSuite`] (count conservation,
//! consensus correctness, bias monotonicity, the paper's round envelope;
//! see [`gossip_analysis::oracle`]) and judged pass/fail. The report
//! aggregates per-cell pass/fail counts and pins down the **first failing
//! seed** of every failing cell, so a violation found across thousands of
//! runs collapses to one ready-to-paste replay command:
//!
//! ```text
//! xp campaign --spec examples/specs/fault_campaign.spec --seeds 1000
//! xp campaign --replay examples/specs/fault_campaign.spec 0x4f3a… --seeds 1000
//! ```
//!
//! Replay re-runs exactly that `(cell, seed)` pair — the per-run seed is
//! [`derive_seed`]`(spec.seed, cell_index, seed_index)`, a pure function
//! of the spec, so the failing execution is reproduced bit-for-bit — and
//! dumps its full per-phase trajectory next to the violations.
//!
//! Campaign runs force a stop-on-consensus condition on top of the spec's
//! own `stop.*` keys: the round envelope oracle then measures actual
//! convergence time instead of the fixed schedule length.

use crate::runner::{axis_cells, axis_columns, expand_grid, resolve_counts, GridPoint, ProtocolRun};
use crate::spec::{ScenarioKind, ScenarioSpec, SpecError};
use gossip_analysis::observe::TrajectoryRecorder;
use gossip_analysis::oracle::{OracleSuite, Violation};
use gossip_analysis::sweep::derive_seed;
use gossip_analysis::table::Table;
use noisy_channel::NoiseMatrix;
use plurality_core::observe::{Fanout, NoObserver, Observer, StopCondition};
use plurality_core::{Outcome, ProtocolParams, TwoStageProtocol};
use pushsim::Opinion;

/// Default number of seeds per campaign cell.
pub const DEFAULT_SEEDS: u64 = 100;

/// Default tolerance of the bias-monotonicity oracle: per-phase bias
/// fluctuations are O(1/√n), so a dip this deep on a healthy run would be
/// many standard deviations even at the smallest grid sizes.
pub const DEFAULT_TOLERANCE: f64 = 0.5;

/// Default slack multiplier of the paper-bound oracle (the envelope is
/// `slack · ln(n)/ε²` rounds). The paper's Theorem 2 hides its constant,
/// and this implementation's two-stage schedule is itself ≈ 17 · ln(n)/ε²
/// rounds with consensus typically landing in the final phases, so the
/// default sits well above the schedule constant: it catches gross
/// blow-ups (misconfigured schedules, runaway stop conditions), not
/// normal end-of-schedule convergence.
pub const DEFAULT_SLACK: f64 = 32.0;

/// Knobs of a campaign run (everything else comes from the spec).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignOptions {
    /// Seeds per grid cell.
    pub seeds: u64,
    /// Bias-monotonicity tolerance.
    pub tolerance: f64,
    /// Paper-bound slack multiplier.
    pub slack: f64,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            seeds: DEFAULT_SEEDS,
            tolerance: DEFAULT_TOLERANCE,
            slack: DEFAULT_SLACK,
        }
    }
}

/// The earliest failing seed of one campaign cell.
#[derive(Debug, Clone)]
pub struct FirstFailure {
    /// Position of the seed in the cell's seed range.
    pub seed_index: u64,
    /// The derived per-run seed (what `--replay` takes).
    pub seed: u64,
    /// The violations that run produced, in detection order.
    pub violations: Vec<Violation>,
}

/// Aggregated verdict of one grid cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The cell's grid point.
    pub point: GridPoint,
    /// Seeds executed.
    pub runs: u64,
    /// Seeds with at least one violation.
    pub failures: u64,
    /// The earliest failing seed, when any failed.
    pub first_failure: Option<FirstFailure>,
}

/// The structured outcome of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    spec: ScenarioSpec,
    options: CampaignOptions,
    cells: Vec<CellOutcome>,
}

impl CampaignReport {
    /// The spec the campaign executed.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The options the campaign ran with.
    pub fn options(&self) -> &CampaignOptions {
        &self.options
    }

    /// Per-cell verdicts, in grid order.
    pub fn cells(&self) -> &[CellOutcome] {
        &self.cells
    }

    /// Whether every run of every cell passed all oracles.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(|c| c.failures == 0)
    }

    /// Renders the per-cell verdict table: the swept axis columns, then
    /// `runs`, `fail` and the first failing seed (the value `--replay`
    /// takes) plus the oracle that tripped.
    pub fn to_table(&self) -> Table {
        let mut headers: Vec<String> = axis_columns(&self.spec)
            .iter()
            .filter(|(_, shown)| *shown)
            .map(|(name, _)| name.to_string())
            .collect();
        if headers.is_empty() {
            headers.push("cell".to_string());
        }
        headers.extend(["runs", "fail", "first failing seed", "oracle"].map(String::from));
        let mut table = Table::new(headers);
        for cell in &self.cells {
            let mut row = axis_cells(&self.spec, &cell.point);
            if row.is_empty() {
                row.push(cell.point.index.to_string());
            }
            row.push(cell.runs.to_string());
            row.push(cell.failures.to_string());
            match &cell.first_failure {
                Some(failure) => {
                    row.push(failure.seed.to_string());
                    row.push(
                        failure
                            .violations
                            .first()
                            .map(|v| v.oracle().to_string())
                            .unwrap_or_default(),
                    );
                }
                None => {
                    row.push("-".to_string());
                    row.push("-".to_string());
                }
            }
            table.push_row(row);
        }
        table
    }

    /// Human-readable failure details: one block per failing cell with the
    /// first failing seed's violations and a ready-to-paste replay command.
    /// `source` is the spec argument of the original invocation (a path or
    /// a registered experiment name).
    pub fn failure_lines(&self, source: &str) -> Vec<String> {
        let mut lines = Vec::new();
        for cell in &self.cells {
            let Some(failure) = &cell.first_failure else {
                continue;
            };
            lines.push(format!(
                "FAIL {}: {}/{} seeds violated an oracle; first failing seed {}",
                cell_label(&self.spec, &cell.point),
                cell.failures,
                cell.runs,
                failure.seed,
            ));
            for violation in &failure.violations {
                lines.push(format!("  {violation}"));
            }
            lines.push(format!(
                "  replay: xp campaign --replay {source} {} --seeds {}",
                failure.seed, self.options.seeds,
            ));
        }
        lines
    }
}

/// One replayed `(cell, seed)` run: the violations it reproduced plus its
/// full per-phase trajectory.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The cell the seed belongs to.
    pub point: GridPoint,
    /// Position of the seed in the cell's seed range.
    pub seed_index: u64,
    /// The derived per-run seed.
    pub seed: u64,
    /// The violations the replay reproduced (empty if it passed).
    pub violations: Vec<Violation>,
    /// The replayed run's per-phase trajectory.
    pub trajectory: TrajectoryRecorder,
}

/// A campaign cell with everything its runs share pre-built (and
/// pre-validated, so the parallel workers cannot fail).
struct CellPlan {
    point: GridPoint,
    noise: NoiseMatrix,
    counts: Option<Vec<usize>>,
}

/// Runs the campaign: every grid cell × every seed in `0..options.seeds`,
/// in parallel across all cores, each run judged by the standard oracle
/// suite. Results are merged in `(cell, seed)` order, so the report is
/// bit-identical to a sequential sweep.
///
/// # Errors
///
/// [`SpecError::Invalid`] if the spec is not a protocol scenario (rumor,
/// plurality, stage2) or fails its own validation; construction errors
/// ([`SpecError::Protocol`], [`SpecError::Noise`]) for the offending cell.
pub fn run_campaign(
    spec: &ScenarioSpec,
    options: &CampaignOptions,
) -> Result<CampaignReport, SpecError> {
    let plans = prepare(spec, options)?;
    let seeds = options.seeds;
    let total = plans.len() as u64 * seeds;
    let stop = campaign_stop(spec);

    let next = std::sync::atomic::AtomicU64::new(0);
    let finished: std::sync::Mutex<Vec<(u64, Vec<Violation>)>> =
        std::sync::Mutex::new(Vec::with_capacity(total as usize));
    let workers = std::thread::available_parallelism()
        .map(|p| p.get() as u64)
        .unwrap_or(1)
        .min(total);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let flat = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if flat >= total {
                    break;
                }
                let plan = &plans[(flat / seeds) as usize];
                let seed_index = flat % seeds;
                let seed = derive_seed(spec.seed, plan.point.index, seed_index);
                let (_, violations) =
                    execute_one(spec, options, plan, &stop, seed, &mut NoObserver);
                finished
                    .lock()
                    .expect("campaign worker poisoned the result lock")
                    .push((flat, violations));
            });
        }
    });
    let mut outcomes = finished.into_inner().expect("all workers joined");
    outcomes.sort_by_key(|&(flat, _)| flat);

    let mut cells = Vec::with_capacity(plans.len());
    for (cell_index, plan) in plans.iter().enumerate() {
        let mut failures = 0;
        let mut first_failure = None;
        for (flat, violations) in &outcomes
            [(cell_index as u64 * seeds) as usize..((cell_index as u64 + 1) * seeds) as usize]
        {
            if violations.is_empty() {
                continue;
            }
            failures += 1;
            if first_failure.is_none() {
                let seed_index = flat % seeds;
                first_failure = Some(FirstFailure {
                    seed_index,
                    seed: derive_seed(spec.seed, plan.point.index, seed_index),
                    violations: violations.clone(),
                });
            }
        }
        cells.push(CellOutcome {
            point: plan.point,
            runs: seeds,
            failures,
            first_failure,
        });
    }
    Ok(CampaignReport {
        spec: spec.clone(),
        options: *options,
        cells,
    })
}

/// Replays one campaign run by its derived seed: locates the `(cell,
/// seed_index)` pair the seed belongs to, re-runs it with the oracle suite
/// *and* a trajectory recorder attached, and returns both.
///
/// # Errors
///
/// [`SpecError::Invalid`] if `seed` is not produced by any `(cell,
/// seed_index)` pair of this campaign (wrong spec, wrong base seed, or a
/// different `--seeds` range than the report that printed it).
pub fn replay(
    spec: &ScenarioSpec,
    options: &CampaignOptions,
    seed: u64,
) -> Result<ReplayOutcome, SpecError> {
    let plans = prepare(spec, options)?;
    let located = plans.iter().find_map(|plan| {
        (0..options.seeds)
            .find(|&s| derive_seed(spec.seed, plan.point.index, s) == seed)
            .map(|s| (plan, s))
    });
    let Some((plan, seed_index)) = located else {
        return Err(SpecError::Invalid(format!(
            "seed {seed} is not part of this campaign ({} cells × {} seeds from base seed {}); \
             pass the spec and --seeds value the report was produced with",
            plans.len(),
            options.seeds,
            spec.seed,
        )));
    };
    let stop = campaign_stop(spec);
    let mut recorder = TrajectoryRecorder::new();
    let (_, violations) = execute_one(spec, options, plan, &stop, seed, &mut recorder);
    Ok(ReplayOutcome {
        point: plan.point,
        seed_index,
        seed,
        violations,
        trajectory: recorder,
    })
}

/// Validates the spec for campaigning and pre-builds every cell's shared
/// state, so worker threads run infallibly.
fn prepare(spec: &ScenarioSpec, options: &CampaignOptions) -> Result<Vec<CellPlan>, SpecError> {
    spec.validate()?;
    if !spec.kind.is_protocol() {
        return Err(SpecError::Invalid(format!(
            "campaigns run protocol scenarios (rumor, plurality, stage2), not {}",
            spec.kind.name()
        )));
    }
    if options.seeds == 0 {
        return Err(SpecError::Invalid("campaigns need at least one seed".into()));
    }
    let eps_swept = !spec.sweep.eps.is_empty();
    let mut plans = Vec::new();
    for point in expand_grid(spec) {
        let noise_spec = if eps_swept {
            spec.noise.with_epsilon(point.eps)
        } else {
            spec.noise.clone()
        };
        let noise = noise_spec.build(point.k)?;
        let params = cell_params(spec, &point, spec.seed)?;
        let counts = match &spec.kind {
            ScenarioKind::PluralityConsensus { init } | ScenarioKind::Stage2Only { init } => {
                let counts = resolve_counts(init, point);
                // Surface count/parameter mismatches per cell, before the
                // parallel sweep starts.
                let protocol = TwoStageProtocol::new(params, noise.clone())?;
                protocol.validate_initial_counts(&counts)?;
                Some(counts)
            }
            ScenarioKind::RumorSpreading { .. } => None,
            _ => unreachable!("campaigns reject non-protocol kinds above"),
        };
        plans.push(CellPlan {
            point,
            noise,
            counts,
        });
    }
    Ok(plans)
}

/// Protocol parameters of one cell at one seed (mirrors the runner's
/// parameter construction, plus the cell's fault model).
fn cell_params(
    spec: &ScenarioSpec,
    point: &GridPoint,
    seed: u64,
) -> Result<ProtocolParams, SpecError> {
    Ok(ProtocolParams::builder(point.n, point.k)
        .epsilon(point.eps)
        .seed(seed)
        .delivery(spec.delivery)
        .topology(point.topology)
        .fault(point.fault)
        .churn(point.churn)
        .noise_schedule(point.schedule)
        .clock(point.clock)
        .constants(spec.constants)
        .build()?)
}

/// The campaign's effective stop condition: the spec's `stop.*` keys plus
/// stop-on-consensus, so the round-envelope oracle judges convergence time
/// rather than the fixed schedule length.
fn campaign_stop(spec: &ScenarioSpec) -> StopCondition {
    let mut conditions = vec![StopCondition::ConsensusReached];
    let extra = spec.stop.to_condition();
    if extra != StopCondition::ScheduleExhausted {
        conditions.push(extra);
    }
    StopCondition::Any(conditions)
}

/// Executes one `(cell, seed)` run under the standard oracle suite, with
/// `extra` observing alongside it (the replay path's trajectory recorder;
/// [`NoObserver`] during the sweep). Returns the outcome and the
/// violations.
fn execute_one(
    spec: &ScenarioSpec,
    options: &CampaignOptions,
    plan: &CellPlan,
    stop: &StopCondition,
    seed: u64,
    extra: &mut dyn Observer,
) -> (Outcome, Vec<Violation>) {
    let point = &plan.point;
    let params = cell_params(spec, point, seed).expect("prepare() validated this cell");
    let protocol = TwoStageProtocol::new(params, plan.noise.clone())
        .expect("prepare() validated this cell");
    let run = match &spec.kind {
        ScenarioKind::RumorSpreading { source } => ProtocolRun::Rumor(Opinion::new(*source)),
        ScenarioKind::PluralityConsensus { .. } => {
            ProtocolRun::Plurality(plan.counts.as_deref().expect("plurality plans carry counts"))
        }
        ScenarioKind::Stage2Only { .. } => {
            ProtocolRun::Stage2(plan.counts.as_deref().expect("stage2 plans carry counts"))
        }
        _ => unreachable!("prepare() rejects non-protocol kinds"),
    };
    // The churn-aware suite: count conservation tracks the cell's
    // deterministic population trajectory instead of a fixed node count.
    let mut suite = OracleSuite::standard_with_churn(
        point.n,
        point.eps,
        options.tolerance,
        options.slack,
        point.churn,
    );
    let outcome = {
        let mut fanout = Fanout::new(vec![&mut suite as &mut dyn Observer, extra]);
        run.execute(&protocol, spec.backend, stop, &mut fanout)
            .expect("prepare() validated this cell")
    };
    let violations = suite.judge(&outcome);
    (outcome, violations)
}

/// A short human label of one cell ("k=3 fault=drop(0.2)", or "cell 0"
/// when nothing is swept).
fn cell_label(spec: &ScenarioSpec, point: &GridPoint) -> String {
    let cells = axis_cells(spec, point);
    let names: Vec<&str> = axis_columns(spec)
        .iter()
        .filter(|(_, shown)| *shown)
        .map(|(name, _)| *name)
        .collect();
    if names.is_empty() {
        return format!("cell {}", point.index);
    }
    names
        .iter()
        .zip(&cells)
        .map(|(name, value)| format!("{name}={value}"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::InitSpec;
    use noisy_channel::NoiseSpec;
    use pushsim::FaultSpec;

    fn campaign_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(
            ScenarioKind::PluralityConsensus {
                init: InitSpec::Counts(vec![240, 160]),
            },
            400,
            2,
        );
        spec.epsilon = 0.3;
        spec.noise = NoiseSpec::Uniform { epsilon: 0.3 };
        spec.seed = 7;
        spec
    }

    #[test]
    fn fault_free_and_mild_fault_cells_pass_deterministically() {
        let mut spec = campaign_spec();
        spec.sweep.fault = vec![FaultSpec::none(), "drop(0.2)".parse().unwrap()];
        let options = CampaignOptions {
            seeds: 8,
            ..CampaignOptions::default()
        };
        let report = run_campaign(&spec, &options).unwrap();
        assert_eq!(report.cells().len(), 2);
        assert!(report.passed(), "healthy cells must pass: {:?}", report.cells());
        assert!(report.failure_lines("x.spec").is_empty());
        let again = run_campaign(&spec, &options).unwrap();
        assert_eq!(report.to_table(), again.to_table(), "campaigns are pure in the spec");
        let table = report.to_table();
        assert_eq!(
            table.headers(),
            &["fault", "runs", "fail", "first failing seed", "oracle"].map(String::from)
        );
        assert_eq!(table.rows()[0][0], "none");
        assert_eq!(table.rows()[1][0], "drop(0.2)");
        assert_eq!(table.rows()[0][2], "0");
    }

    #[test]
    fn violations_pin_the_first_failing_seed_and_replay_reproduces_them() {
        let spec = campaign_spec();
        // A vanishing round envelope makes every run violate the
        // paper-bound oracle, deterministically.
        let options = CampaignOptions {
            seeds: 5,
            slack: 1e-9,
            ..CampaignOptions::default()
        };
        let report = run_campaign(&spec, &options).unwrap();
        assert!(!report.passed());
        let cell = &report.cells()[0];
        assert_eq!(cell.failures, 5);
        let failure = cell.first_failure.as_ref().unwrap();
        assert_eq!(failure.seed_index, 0);
        assert_eq!(failure.seed, derive_seed(spec.seed, 0, 0));
        assert_eq!(failure.violations[0].oracle(), "paper-bound");
        let lines = report.failure_lines("broken.spec");
        assert!(lines[0].starts_with("FAIL cell 0: 5/5 seeds"), "{lines:?}");
        let replay_line = lines.last().unwrap();
        assert_eq!(
            replay_line.trim(),
            format!("replay: xp campaign --replay broken.spec {} --seeds 5", failure.seed)
        );

        let replayed = replay(&spec, &options, failure.seed).unwrap();
        assert_eq!(replayed.seed_index, 0);
        assert_eq!(replayed.point.index, 0);
        assert!(!replayed.trajectory.is_empty(), "replay dumps the trajectory");
        let rendered: Vec<String> =
            replayed.violations.iter().map(|v| v.to_string()).collect();
        let expected: Vec<String> =
            failure.violations.iter().map(|v| v.to_string()).collect();
        assert_eq!(rendered, expected, "replay reproduces the exact violations");
    }

    #[test]
    fn byzantine_cells_trip_the_consensus_oracle() {
        let mut spec = campaign_spec();
        // 40% Byzantine agents pushing the minority opinion: the honest
        // bias collapses below zero (bias-monotonicity) and runs either
        // converge wrong (consensus-correctness) or crawl past the round
        // envelope (paper-bound).
        spec.fault = "byz(0.4:1)".parse().unwrap();
        let options = CampaignOptions {
            seeds: 6,
            ..CampaignOptions::default()
        };
        let report = run_campaign(&spec, &options).unwrap();
        let cell = &report.cells()[0];
        assert!(cell.failures > 0, "byzantine sabotage must be detected");
        let failure = cell.first_failure.as_ref().unwrap();
        assert!(
            failure.violations.iter().any(|v| {
                v.oracle() == "bias-monotonicity" || v.oracle() == "consensus-correctness"
            }),
            "expected the sabotage itself to be flagged, got {:?}",
            failure.violations
        );
    }

    #[test]
    fn churn_cells_compose_with_faults_under_the_churn_aware_count_oracle() {
        let mut spec = campaign_spec();
        spec.sweep.fault = vec![FaultSpec::none(), "drop(0.1)".parse().unwrap()];
        spec.sweep.churn = vec![
            pushsim::ChurnSpec::none(),
            "join(0.05)+leave(0.05)".parse().unwrap(),
        ];
        let options = CampaignOptions {
            seeds: 4,
            ..CampaignOptions::default()
        };
        let report = run_campaign(&spec, &options).unwrap();
        assert_eq!(report.cells().len(), 4, "fault x churn grid");
        let table = report.to_table();
        assert_eq!(
            &table.headers()[..2],
            &["fault", "churn"].map(String::from),
            "churn is a first-class campaign axis"
        );
        // The count-conservation oracle follows each cell's deterministic
        // population trajectory, so steady churn alone never trips it.
        for cell in report.cells() {
            if let Some(failure) = &cell.first_failure {
                assert!(
                    failure.violations.iter().all(|v| v.oracle() != "count-conservation"),
                    "churn-aware conservation must track the trajectory: {:?}",
                    failure.violations
                );
            }
        }
    }

    #[test]
    fn adversarial_join_churn_induces_replayable_violations() {
        let mut spec = campaign_spec();
        // Every phase boundary floods in 40% fresh agents that all hold
        // the minority opinion: the plurality flips and runs converge on
        // the wrong opinion (or crawl past the round envelope).
        spec.churn = "join(0.4:1)".parse().unwrap();
        let options = CampaignOptions {
            seeds: 4,
            ..CampaignOptions::default()
        };
        let report = run_campaign(&spec, &options).unwrap();
        let cell = &report.cells()[0];
        assert!(cell.failures > 0, "adversarial churn must be detected");
        let failure = cell.first_failure.as_ref().unwrap();
        assert!(
            failure.violations.iter().all(|v| v.oracle() != "count-conservation"),
            "the failure is behavioural, not a bookkeeping artifact: {:?}",
            failure.violations
        );

        let replayed = replay(&spec, &options, failure.seed).unwrap();
        assert!(!replayed.trajectory.is_empty(), "replay dumps the trajectory");
        let rendered: Vec<String> =
            replayed.violations.iter().map(|v| v.to_string()).collect();
        let expected: Vec<String> =
            failure.violations.iter().map(|v| v.to_string()).collect();
        assert_eq!(rendered, expected, "replay reproduces the churn-induced violations");
    }

    #[test]
    fn campaigns_reject_non_protocol_specs_and_unknown_replay_seeds() {
        let spec = ScenarioSpec::new(
            ScenarioKind::SampleMajorityGap { ell: 25, delta: 0.1 },
            400,
            2,
        );
        let err = run_campaign(&spec, &CampaignOptions::default()).unwrap_err();
        assert!(matches!(err, SpecError::Invalid(_)), "{err}");

        let spec = campaign_spec();
        let options = CampaignOptions {
            seeds: 3,
            ..CampaignOptions::default()
        };
        let err = replay(&spec, &options, 0xDEAD_BEEF).unwrap_err();
        assert!(err.to_string().contains("not part of this campaign"), "{err}");
    }
}
