//! Confidence intervals for success probabilities.

use std::fmt;

/// A Wilson score confidence interval for a Bernoulli success probability.
///
/// The paper's guarantees are "with high probability" statements; the
/// experiments estimate the corresponding success probabilities from
/// repeated trials, and the Wilson interval gives well-behaved bounds even
/// when the observed count is 0 or equal to the number of trials (where the
/// naive normal interval collapses).
///
/// ```
/// use gossip_analysis::ci::WilsonInterval;
///
/// let ci = WilsonInterval::from_trials(48, 50);
/// assert!(ci.lower() > 0.8);
/// assert!(ci.upper() <= 1.0);
/// assert!(ci.contains(0.96));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilsonInterval {
    successes: u64,
    trials: u64,
    lower: f64,
    upper: f64,
}

impl WilsonInterval {
    /// The default normal quantile (95% two-sided confidence).
    pub const Z_95: f64 = 1.959_963_984_540_054;

    /// Builds a 95% Wilson interval from `successes` out of `trials`.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `successes > trials`.
    pub fn from_trials(successes: u64, trials: u64) -> Self {
        Self::with_z(successes, trials, Self::Z_95)
    }

    /// Builds a Wilson interval with an explicit normal quantile `z`.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`, `successes > trials`, or `z ≤ 0`.
    pub fn with_z(successes: u64, trials: u64, z: f64) -> Self {
        assert!(trials > 0, "need at least one trial");
        assert!(successes <= trials, "successes cannot exceed trials");
        assert!(z > 0.0, "z must be positive");
        let n = trials as f64;
        let p = successes as f64 / n;
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let centre = p + z2 / (2.0 * n);
        let spread = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        let lower = ((centre - spread) / denom).clamp(0.0, 1.0);
        let upper = ((centre + spread) / denom).clamp(0.0, 1.0);
        Self {
            successes,
            trials,
            lower,
            upper,
        }
    }

    /// The observed number of successes.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// The number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The point estimate `successes / trials`.
    pub fn point_estimate(&self) -> f64 {
        self.successes as f64 / self.trials as f64
    }

    /// The lower confidence bound.
    pub fn lower(&self) -> f64 {
        self.lower
    }

    /// The upper confidence bound.
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// `true` if `p` lies inside the interval.
    pub fn contains(&self, p: f64) -> bool {
        p >= self.lower && p <= self.upper
    }
}

impl fmt::Display for WilsonInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} = {:.3} [{:.3}, {:.3}]",
            self.successes,
            self.trials,
            self.point_estimate(),
            self.lower,
            self.upper
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_the_point_estimate() {
        let ci = WilsonInterval::from_trials(30, 100);
        assert!(ci.lower() < 0.3 && 0.3 < ci.upper());
        assert!(ci.contains(ci.point_estimate()));
        assert_eq!(ci.successes(), 30);
        assert_eq!(ci.trials(), 100);
    }

    #[test]
    fn extreme_counts_stay_inside_the_unit_interval() {
        let all = WilsonInterval::from_trials(50, 50);
        assert!(all.upper() <= 1.0);
        assert!(all.lower() > 0.9);
        let none = WilsonInterval::from_trials(0, 50);
        assert!(none.lower() >= 0.0);
        assert!(none.upper() < 0.1);
    }

    #[test]
    fn more_trials_tighten_the_interval() {
        let small = WilsonInterval::from_trials(8, 10);
        let large = WilsonInterval::from_trials(800, 1000);
        assert!(large.upper() - large.lower() < small.upper() - small.lower());
    }

    #[test]
    fn higher_z_widens_the_interval() {
        let narrow = WilsonInterval::with_z(40, 80, 1.0);
        let wide = WilsonInterval::with_z(40, 80, 3.0);
        assert!(wide.upper() - wide.lower() > narrow.upper() - narrow.lower());
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let _ = WilsonInterval::from_trials(0, 0);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn more_successes_than_trials_panics() {
        let _ = WilsonInterval::from_trials(5, 4);
    }

    #[test]
    fn display_shows_counts_and_bounds() {
        let ci = WilsonInterval::from_trials(3, 4);
        let text = ci.to_string();
        assert!(text.contains("3/4"));
        assert!(text.contains('['));
    }
}
