//! # gossip-analysis
//!
//! Statistics, confidence intervals, parameter sweeps and plain-text table
//! emitters for the noisy-plurality experiment harness.
//!
//! The experiments of this reproduction (DESIGN.md §5) all follow the same
//! shape: repeat a randomized protocol run over a grid of parameters,
//! estimate success rates and means with confidence intervals, and print a
//! table whose rows can be compared against the paper's predictions. This
//! crate provides those building blocks without pulling in any external
//! statistics dependency:
//!
//! * [`stats::SampleStats`] — online mean / variance / min / max.
//! * [`ci::WilsonInterval`] — Wilson score intervals for success
//!   probabilities ("w.h.p." claims are checked through these).
//! * [`sweep`] — a tiny harness for running a closure over a parameter grid
//!   with repetitions and collecting rows.
//! * [`table`] — fixed-width plain-text tables and CSV output for
//!   EXPERIMENTS.md.
//! * [`observe`] — ready-made observers for the core observation layer:
//!   per-phase trajectory recording ([`observe::TrajectoryRecorder`]),
//!   streaming per-phase aggregates over many runs
//!   ([`observe::OnlineStats`]) and live JSONL emission
//!   ([`observe::StreamSink`]).
//! * [`oracle`] — invariant oracles for fault-injection campaigns:
//!   per-run pass/fail judgments ([`oracle::Oracle`],
//!   [`oracle::OracleSuite`]) returning structured
//!   [`Violation`](oracle::Violation)s (count conservation, consensus
//!   correctness, bias monotonicity, the paper's round envelope).
//!
//! # Example
//!
//! ```
//! use gossip_analysis::stats::SampleStats;
//!
//! let mut stats = SampleStats::new();
//! for x in [1.0, 2.0, 3.0, 4.0] {
//!     stats.push(x);
//! }
//! assert_eq!(stats.mean(), 2.5);
//! assert_eq!(stats.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod observe;
pub mod oracle;
pub mod stats;
pub mod sweep;
pub mod table;
