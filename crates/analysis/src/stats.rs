//! Online sample statistics.

use std::fmt;

/// Online mean / variance / extrema accumulator (Welford's algorithm).
///
/// ```
/// use gossip_analysis::stats::SampleStats;
///
/// let stats: SampleStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(stats.mean(), 5.0);
/// assert_eq!(stats.population_variance(), 4.0);
/// assert_eq!(stats.min(), Some(2.0));
/// assert_eq!(stats.max(), Some(9.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl SampleStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "cannot accumulate NaN observations");
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The number of observations.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// `true` if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// The population variance (dividing by `n`; 0 if empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// The sample variance (dividing by `n − 1`; 0 if fewer than two
    /// observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// The standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// A normal-approximation 95% confidence half-width for the mean.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// The smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// The largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &SampleStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for SampleStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut stats = SampleStats::new();
        for value in iter {
            stats.push(value);
        }
        stats
    }
}

impl Extend<f64> for SampleStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for value in iter {
            self.push(value);
        }
    }
}

impl fmt::Display for SampleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.4} ± {:.4} (n = {})",
            self.mean(),
            self.ci95_half_width(),
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_well_defined() {
        let stats = SampleStats::new();
        assert!(stats.is_empty());
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.population_variance(), 0.0);
        assert_eq!(stats.sample_variance(), 0.0);
        assert_eq!(stats.min(), None);
        assert_eq!(stats.max(), None);
        assert_eq!(stats.std_error(), 0.0);
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let stats: SampleStats = (1..=100).map(|i| i as f64).collect();
        assert_eq!(stats.len(), 100);
        assert!((stats.mean() - 50.5).abs() < 1e-12);
        // Population variance of 1..=100 is (100^2 - 1) / 12.
        assert!((stats.population_variance() - (100.0 * 100.0 - 1.0) / 12.0).abs() < 1e-9);
        assert_eq!(stats.min(), Some(1.0));
        assert_eq!(stats.max(), Some(100.0));
    }

    #[test]
    fn merge_is_equivalent_to_sequential_accumulation() {
        let all: SampleStats = (0..50).map(|i| (i as f64).sin()).collect();
        let mut left: SampleStats = (0..20).map(|i| (i as f64).sin()).collect();
        let right: SampleStats = (20..50).map(|i| (i as f64).sin()).collect();
        left.merge(&right);
        assert_eq!(left.len(), all.len());
        assert!((left.mean() - all.mean()).abs() < 1e-12);
        assert!((left.sample_variance() - all.sample_variance()).abs() < 1e-12);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut stats: SampleStats = [1.0, 2.0].into_iter().collect();
        stats.merge(&SampleStats::new());
        assert_eq!(stats.len(), 2);
        let mut empty = SampleStats::new();
        empty.merge(&stats);
        assert_eq!(empty.len(), 2);
        assert_eq!(empty.mean(), 1.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_observations_are_rejected() {
        SampleStats::new().push(f64::NAN);
    }

    #[test]
    fn display_mentions_mean_and_count() {
        let stats: SampleStats = [1.0, 3.0].into_iter().collect();
        let text = stats.to_string();
        assert!(text.contains("2.0"));
        assert!(text.contains("n = 2"));
    }
}
