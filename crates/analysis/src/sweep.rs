//! Parameter sweeps with repetitions.

use crate::stats::SampleStats;
use std::collections::BTreeMap;

/// One row of a sweep: a parameter point plus named metric accumulators.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    label: String,
    metrics: BTreeMap<String, SampleStats>,
}

impl SweepRow {
    /// Creates an empty row for the parameter point described by `label`.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            metrics: BTreeMap::new(),
        }
    }

    /// The label of the parameter point (e.g. `"n=10000,k=3"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Records one observation of metric `name`.
    pub fn record(&mut self, name: &str, value: f64) {
        self.metrics.entry(name.to_string()).or_default().push(value);
    }

    /// The accumulator of metric `name`, if any observation was recorded.
    pub fn metric(&self, name: &str) -> Option<&SampleStats> {
        self.metrics.get(name)
    }

    /// The names of all recorded metrics, in sorted order.
    pub fn metric_names(&self) -> impl Iterator<Item = &str> {
        self.metrics.keys().map(|s| s.as_str())
    }
}

/// A parameter sweep: a list of parameter points, each repeated several
/// times, producing one [`SweepRow`] per point.
///
/// ```
/// use gossip_analysis::sweep::Sweep;
///
/// // Estimate the mean of x^2 for x = 1, 2, 3 with 4 "repetitions" each.
/// let rows = Sweep::over(vec![1.0f64, 2.0, 3.0])
///     .repetitions(4)
///     .run(|&x, _rep, row| {
///         row.record("square", x * x);
///     });
/// assert_eq!(rows.len(), 3);
/// assert_eq!(rows[1].metric("square").unwrap().mean(), 4.0);
/// ```
#[derive(Debug, Clone)]
pub struct Sweep<P> {
    points: Vec<P>,
    repetitions: u64,
}

impl<P: std::fmt::Debug> Sweep<P> {
    /// Creates a sweep over the given parameter points.
    pub fn over(points: Vec<P>) -> Self {
        Self {
            points,
            repetitions: 1,
        }
    }

    /// Sets how many times each parameter point is repeated (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `repetitions == 0`.
    pub fn repetitions(mut self, repetitions: u64) -> Self {
        assert!(repetitions > 0, "need at least one repetition");
        self.repetitions = repetitions;
        self
    }

    /// Runs `body` for every (point, repetition) pair; the body records
    /// metrics into the row for its point. Returns one row per point, in
    /// the original order, labelled with the point's `Debug` representation.
    pub fn run<F>(self, mut body: F) -> Vec<SweepRow>
    where
        F: FnMut(&P, u64, &mut SweepRow),
    {
        let mut rows = Vec::with_capacity(self.points.len());
        for point in &self.points {
            let mut row = SweepRow::new(format!("{point:?}"));
            for rep in 0..self.repetitions {
                body(point, rep, &mut row);
            }
            rows.push(row);
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_visits_every_point_and_repetition() {
        let mut visits = Vec::new();
        let rows = Sweep::over(vec!["a", "b"]).repetitions(3).run(|p, rep, row| {
            visits.push((p.to_string(), rep));
            row.record("reps", rep as f64);
        });
        assert_eq!(rows.len(), 2);
        assert_eq!(visits.len(), 6);
        assert_eq!(rows[0].metric("reps").unwrap().len(), 3);
        assert_eq!(rows[0].label(), "\"a\"");
    }

    #[test]
    fn rows_accumulate_multiple_metrics() {
        let mut row = SweepRow::new("point");
        row.record("x", 1.0);
        row.record("x", 3.0);
        row.record("y", 10.0);
        assert_eq!(row.metric("x").unwrap().mean(), 2.0);
        assert_eq!(row.metric("y").unwrap().len(), 1);
        assert!(row.metric("z").is_none());
        let names: Vec<&str> = row.metric_names().collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    #[should_panic(expected = "repetition")]
    fn zero_repetitions_is_rejected() {
        let _ = Sweep::over(vec![1]).repetitions(0);
    }
}
