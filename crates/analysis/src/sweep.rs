//! Parameter sweeps with repetitions — sequential or multi-threaded, with
//! deterministic per-repetition seed derivation.
//!
//! Every `(point, repetition)` pair gets a seed derived purely from
//! `(base_seed, point_index, rep)` by [`derive_seed`], so the statistics of
//! a sweep are a function of the base seed alone: running sequentially
//! ([`Sweep::run_seeded`]) or across any number of threads
//! ([`Sweep::run_par`]) produces **identical** rows (results are merged in
//! `(point, rep)` order regardless of completion order, and
//! [`SampleStats::merge`] of per-repetition rows is exactly equivalent to
//! sequential accumulation).

use crate::stats::SampleStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Derives the RNG seed of one `(point, repetition)` cell from the sweep's
/// base seed — a SplitMix64-style mix, so neighbouring cells get unrelated
/// streams.
pub fn derive_seed(base_seed: u64, point_index: usize, rep: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add((point_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(rep.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One repetition's identity within a sweep: which point, which rep, and
/// the derived RNG seed the body should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepContext {
    /// Index of the parameter point in the sweep's point list.
    pub point_index: usize,
    /// Repetition number within the point (`0..repetitions`).
    pub rep: u64,
    /// The seed derived from `(base_seed, point_index, rep)`.
    pub seed: u64,
}

/// One row of a sweep: a parameter point plus named metric accumulators.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    label: String,
    metrics: BTreeMap<String, SampleStats>,
}

impl SweepRow {
    /// Creates an empty row for the parameter point described by `label`.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            metrics: BTreeMap::new(),
        }
    }

    /// The label of the parameter point (e.g. `"n=10000,k=3"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Records one observation of metric `name`.
    pub fn record(&mut self, name: &str, value: f64) {
        self.metrics.entry(name.to_string()).or_default().push(value);
    }

    /// The accumulator of metric `name`, if any observation was recorded.
    pub fn metric(&self, name: &str) -> Option<&SampleStats> {
        self.metrics.get(name)
    }

    /// The names of all recorded metrics, in sorted order.
    pub fn metric_names(&self) -> impl Iterator<Item = &str> {
        self.metrics.keys().map(|s| s.as_str())
    }

    /// Merges another row's accumulators into this one (used to combine
    /// per-repetition rows; metric-wise [`SampleStats::merge`]).
    pub fn merge(&mut self, other: &SweepRow) {
        for (name, stats) in &other.metrics {
            self.metrics
                .entry(name.clone())
                .or_default()
                .merge(stats);
        }
    }
}

/// A parameter sweep: a list of parameter points, each repeated several
/// times, producing one [`SweepRow`] per point.
///
/// ```
/// use gossip_analysis::sweep::Sweep;
///
/// // Estimate the mean of x^2 for x = 1, 2, 3 with 4 "repetitions" each.
/// let rows = Sweep::over(vec![1.0f64, 2.0, 3.0])
///     .repetitions(4)
///     .run(|&x, _rep, row| {
///         row.record("square", x * x);
///     });
/// assert_eq!(rows.len(), 3);
/// assert_eq!(rows[1].metric("square").unwrap().mean(), 4.0);
/// ```
#[derive(Debug, Clone)]
pub struct Sweep<P> {
    points: Vec<P>,
    repetitions: u64,
}

impl<P: std::fmt::Debug> Sweep<P> {
    /// Creates a sweep over the given parameter points.
    pub fn over(points: Vec<P>) -> Self {
        Self {
            points,
            repetitions: 1,
        }
    }

    /// Sets how many times each parameter point is repeated (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `repetitions == 0`.
    pub fn repetitions(mut self, repetitions: u64) -> Self {
        assert!(repetitions > 0, "need at least one repetition");
        self.repetitions = repetitions;
        self
    }

    /// Runs `body` for every (point, repetition) pair; the body records
    /// metrics into the row for its point. Returns one row per point, in
    /// the original order, labelled with the point's `Debug` representation.
    pub fn run<F>(self, mut body: F) -> Vec<SweepRow>
    where
        F: FnMut(&P, u64, &mut SweepRow),
    {
        let mut rows = Vec::with_capacity(self.points.len());
        for point in &self.points {
            let mut row = SweepRow::new(format!("{point:?}"));
            for rep in 0..self.repetitions {
                body(point, rep, &mut row);
            }
            rows.push(row);
        }
        rows
    }

    /// Sequential sweep with derived per-repetition seeds: `body` receives
    /// the point and a [`RepContext`] carrying the seed it must use for all
    /// of that repetition's randomness.
    ///
    /// Produces rows identical to [`run_par`](Self::run_par) with the same
    /// base seed (both merge per-repetition rows in `(point, rep)` order).
    pub fn run_seeded<F>(self, base_seed: u64, mut body: F) -> Vec<SweepRow>
    where
        F: FnMut(&P, RepContext, &mut SweepRow),
    {
        let repetitions = self.repetitions;
        let mut rows: Vec<SweepRow> = self
            .points
            .iter()
            .map(|p| SweepRow::new(format!("{p:?}")))
            .collect();
        for (point_index, point) in self.points.iter().enumerate() {
            for rep in 0..repetitions {
                let ctx = RepContext {
                    point_index,
                    rep,
                    seed: derive_seed(base_seed, point_index, rep),
                };
                let mut rep_row = SweepRow::new(String::new());
                body(point, ctx, &mut rep_row);
                rows[point_index].merge(&rep_row);
            }
        }
        rows
    }

    /// Multi-threaded sweep over all `(point, repetition)` cells.
    ///
    /// `threads = 0` means one worker per available CPU core. Each cell
    /// runs `body` with its [`derive_seed`]-derived seed into a private
    /// row; finished rows are merged in `(point, rep)` order, so the result
    /// is identical to [`run_seeded`](Self::run_seeded) with the same base
    /// seed — regardless of the thread count or completion order.
    pub fn run_par<F>(self, base_seed: u64, threads: usize, body: F) -> Vec<SweepRow>
    where
        P: Sync,
        F: Fn(&P, RepContext, &mut SweepRow) + Sync,
    {
        let repetitions = self.repetitions;
        let num_points = self.points.len();
        let total_jobs = num_points * repetitions as usize;
        let workers = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        }
        .min(total_jobs.max(1));

        let points = &self.points;
        let next_job = AtomicUsize::new(0);
        let finished: Mutex<Vec<(usize, u64, SweepRow)>> =
            Mutex::new(Vec::with_capacity(total_jobs));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let job = next_job.fetch_add(1, Ordering::Relaxed);
                    if job >= total_jobs {
                        break;
                    }
                    let point_index = job / repetitions as usize;
                    let rep = (job % repetitions as usize) as u64;
                    let ctx = RepContext {
                        point_index,
                        rep,
                        seed: derive_seed(base_seed, point_index, rep),
                    };
                    let mut rep_row = SweepRow::new(String::new());
                    body(&points[point_index], ctx, &mut rep_row);
                    finished
                        .lock()
                        .expect("sweep worker poisoned the result lock")
                        .push((point_index, rep, rep_row));
                });
            }
        });

        let mut cells = finished.into_inner().expect("all workers joined");
        cells.sort_by_key(|&(point_index, rep, _)| (point_index, rep));
        let mut rows: Vec<SweepRow> = self
            .points
            .iter()
            .map(|p| SweepRow::new(format!("{p:?}")))
            .collect();
        for (point_index, _rep, rep_row) in &cells {
            rows[*point_index].merge(rep_row);
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_visits_every_point_and_repetition() {
        let mut visits = Vec::new();
        let rows = Sweep::over(vec!["a", "b"]).repetitions(3).run(|p, rep, row| {
            visits.push((p.to_string(), rep));
            row.record("reps", rep as f64);
        });
        assert_eq!(rows.len(), 2);
        assert_eq!(visits.len(), 6);
        assert_eq!(rows[0].metric("reps").unwrap().len(), 3);
        assert_eq!(rows[0].label(), "\"a\"");
    }

    #[test]
    fn rows_accumulate_multiple_metrics() {
        let mut row = SweepRow::new("point");
        row.record("x", 1.0);
        row.record("x", 3.0);
        row.record("y", 10.0);
        assert_eq!(row.metric("x").unwrap().mean(), 2.0);
        assert_eq!(row.metric("y").unwrap().len(), 1);
        assert!(row.metric("z").is_none());
        let names: Vec<&str> = row.metric_names().collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    #[should_panic(expected = "repetition")]
    fn zero_repetitions_is_rejected() {
        let _ = Sweep::over(vec![1]).repetitions(0);
    }

    #[test]
    fn derived_seeds_are_deterministic_and_distinct() {
        assert_eq!(derive_seed(1, 2, 3), derive_seed(1, 2, 3));
        let mut seen = std::collections::HashSet::new();
        for base in 0..3u64 {
            for point in 0..10usize {
                for rep in 0..10u64 {
                    assert!(seen.insert(derive_seed(base, point, rep)));
                }
            }
        }
    }

    /// A deterministic pseudo-experiment: the metric is a pure function of
    /// the cell's derived seed, so sequential and parallel sweeps must
    /// agree bit for bit.
    fn seed_driven_body(scale: &f64, ctx: RepContext, row: &mut SweepRow) {
        let noise = (ctx.seed % 1_000) as f64 / 1_000.0;
        row.record("value", scale * noise);
        if ctx.rep.is_multiple_of(2) {
            row.record("even_rep_value", scale + noise);
        }
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree_exactly() {
        let points = vec![1.0f64, 2.0, 3.0];
        let base_seed = 42;
        let sequential = Sweep::over(points.clone())
            .repetitions(16)
            .run_seeded(base_seed, seed_driven_body);
        for threads in [1, 2, 4, 0] {
            let parallel = Sweep::over(points.clone())
                .repetitions(16)
                .run_par(base_seed, threads, seed_driven_body);
            assert_eq!(parallel.len(), sequential.len());
            for (p, s) in parallel.iter().zip(&sequential) {
                assert_eq!(p.label(), s.label());
                let names: Vec<&str> = s.metric_names().collect();
                assert_eq!(p.metric_names().collect::<Vec<_>>(), names);
                for name in names {
                    let (pm, sm) = (p.metric(name).unwrap(), s.metric(name).unwrap());
                    assert_eq!(pm.len(), sm.len());
                    assert_eq!(pm.mean(), sm.mean(), "thread count {threads}");
                    assert_eq!(pm.sample_variance(), sm.sample_variance());
                    assert_eq!(pm.min(), sm.min());
                    assert_eq!(pm.max(), sm.max());
                }
            }
        }
    }

    #[test]
    fn run_par_visits_every_cell_once() {
        let rows = Sweep::over(vec![10u64, 20])
            .repetitions(5)
            .run_par(7, 3, |&p, ctx, row| {
                row.record("reps", ctx.rep as f64 + p as f64);
            });
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].metric("reps").unwrap().len(), 5);
        assert_eq!(rows[1].metric("reps").unwrap().len(), 5);
    }
}
