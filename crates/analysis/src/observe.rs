//! Ready-made [`Observer`]s: trajectory recording, streaming per-phase
//! statistics, and JSONL sinks.
//!
//! These are the built-in consumers of the core observation layer
//! (`plurality_core::observe`): attach them to a
//! [`Session`](plurality_core::Session) run or a dynamics `run_until` to
//! turn per-phase [`PhaseSnapshot`]s into tables, streaming aggregates, or
//! incrementally emitted JSON lines.
//!
//! * [`TrajectoryRecorder`] — collects every snapshot of one execution and
//!   renders the canonical trajectory table (stage, phase, rounds,
//!   activation, bias, per-phase bias amplification — the shape of
//!   experiment F5 / Lemmas 7 and 12).
//! * [`OnlineStats`] — streaming per-phase-index mean/CI aggregates over
//!   *many* executions via [`SampleStats`] (the shape of experiment T3 /
//!   Claims 2–3): attach one instance to every trial of a configuration.
//! * [`StreamSink`] — writes one JSON line per finished phase to any
//!   [`Write`], flushing as it goes, so long runs can be watched (or
//!   piped) live instead of waiting for the final table.
//! * [`DisseminationTime`] — records when the opinionated fraction first
//!   reaches a threshold (the rumor-spreading dissemination time of
//!   Theorem 1 when the threshold is 1).
//! * [`ReconvergenceTime`] — measures how long the system needs to win
//!   the bias threshold back after a temporal disruption (a noise burst,
//!   a churn burst, …) knocked it below; the observable behind the
//!   `burst` experiment.

use crate::stats::SampleStats;
use crate::table::{json_line, Table};
use plurality_core::observe::{Observer, PhaseSnapshot};
use plurality_core::StageId;
use std::io::Write;

/// The column headers of the canonical trajectory table. The final
/// `topology` column records which communication graph produced the
/// trajectory (`"complete"` for the paper's model).
pub const TRAJECTORY_HEADERS: [&str; 7] = [
    "stage",
    "phase",
    "rounds",
    "opinionated",
    "bias",
    "amplification",
    "topology",
];

/// The column headers of the per-phase aggregate table
/// ([`OnlineStats::to_table`]); shared with the experiment runner so
/// streamed rows and the final table stay byte-compatible.
pub const PHASES_HEADERS: [&str; 6] =
    ["stage", "phase", "opinionated", "growth", "bias", "amplification"];

/// Renders one canonical trajectory row for a finished phase.
///
/// `previous_bias` is the bias after the preceding phase (across stage
/// boundaries); the amplification column shows the ratio `bias /
/// previous_bias` for Stage 2 phases — the per-phase amplification factor
/// of Proposition 1 — and for stage-less (dynamics) steps, and `-`
/// elsewhere (Stage 1 degrades the bias by design, so a ratio there would
/// only invite misreading).
pub fn trajectory_row(snapshot: &PhaseSnapshot, previous_bias: Option<f64>) -> Vec<String> {
    let stage = snapshot
        .stage()
        .map_or_else(|| "-".to_string(), |s| s.to_string());
    let bias = snapshot.bias();
    let amplification = match (snapshot.stage(), previous_bias, bias) {
        (Some(StageId::Two) | None, Some(prev), Some(curr)) if prev > 0.0 => {
            format!("{:.2}x", curr / prev)
        }
        _ => "-".to_string(),
    };
    vec![
        stage,
        snapshot.phase().to_string(),
        snapshot.rounds().to_string(),
        format!("{:.3}", snapshot.opinionated_fraction()),
        bias.map_or_else(|| "-".to_string(), |b| format!("{b:+.4}")),
        amplification,
        snapshot.topology().to_string(),
    ]
}

/// Records the full per-phase trajectory of one execution.
///
/// The recorder keeps every [`PhaseSnapshot`] (O(k) memory per phase) and
/// renders them as the canonical trajectory table. Attaching it never
/// perturbs the run: observation is RNG-free by construction.
///
/// ```
/// use gossip_analysis::observe::TrajectoryRecorder;
/// use noisy_channel::NoiseMatrix;
/// use plurality_core::{ExecutionBackend, ProtocolParams, TwoStageProtocol};
/// use pushsim::Opinion;
///
/// # fn main() -> Result<(), plurality_core::ProtocolError> {
/// let noise = NoiseMatrix::uniform(2, 0.35).expect("valid noise");
/// let params = ProtocolParams::builder(400, 2).epsilon(0.35).seed(5).build()?;
/// let protocol = TwoStageProtocol::new(params, noise)?;
/// let mut recorder = TrajectoryRecorder::new();
/// let outcome = protocol.session().run_rumor_spreading_on(
///     ExecutionBackend::Auto,
///     Opinion::new(0),
///     &mut recorder,
/// )?;
/// assert_eq!(recorder.len(), outcome.phase_records().len());
/// let table = recorder.to_table();
/// assert_eq!(table.num_rows(), recorder.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrajectoryRecorder {
    snapshots: Vec<PhaseSnapshot>,
}

impl TrajectoryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded snapshots, in execution order.
    pub fn snapshots(&self) -> &[PhaseSnapshot] {
        &self.snapshots
    }

    /// Number of recorded phases.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Discards the recorded trajectory (for reuse across executions).
    pub fn clear(&mut self) {
        self.snapshots.clear();
    }

    /// The canonical trajectory rows (no headers), with the amplification
    /// column threaded across stage boundaries exactly like
    /// [`trajectory_row`].
    pub fn rows(&self) -> Vec<Vec<String>> {
        let mut previous_bias: Option<f64> = None;
        self.snapshots
            .iter()
            .map(|snapshot| {
                let row = trajectory_row(snapshot, previous_bias);
                previous_bias = snapshot.bias();
                row
            })
            .collect()
    }

    /// The canonical trajectory table
    /// ([`TRAJECTORY_HEADERS`] columns, one row per phase).
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(TRAJECTORY_HEADERS.to_vec());
        for row in self.rows() {
            table.push_row(row);
        }
        table
    }
}

impl Observer for TrajectoryRecorder {
    fn on_phase_end(&mut self, snapshot: &PhaseSnapshot) {
        self.snapshots.push(snapshot.clone());
    }
}

/// Streaming per-phase aggregates over many executions of one
/// configuration.
///
/// Attach a single `OnlineStats` to every trial (its [`Observer::on_finish`]
/// hook separates runs); it accumulates, per phase index, the mean
/// activation, activation growth factor (Claims 2–3's `β/ε² + 1`), bias
/// and per-phase bias amplification, using [`SampleStats`]'s online
/// accumulators — memory stays O(phases), independent of the number of
/// runs.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    slots: Vec<PhaseSlot>,
    cursor: usize,
    runs: u64,
    previous_fraction: Option<f64>,
    previous_bias: Option<f64>,
}

/// The aggregates of one phase index across runs.
#[derive(Debug, Clone)]
pub struct PhaseSlot {
    /// The stage of the phase (`None` for stage-less executions).
    pub stage: Option<StageId>,
    /// The phase index within its stage.
    pub phase: usize,
    /// Fraction of opinionated agents at the end of the phase.
    pub opinionated: SampleStats,
    /// Activation growth factor over the preceding phase (recorded from
    /// the second phase of each run on, and only while the previous
    /// fraction is positive).
    pub growth: SampleStats,
    /// Bias towards the reference opinion (recorded when defined).
    pub bias: SampleStats,
    /// Bias amplification over the preceding phase (recorded when both
    /// biases are defined and the previous one is positive).
    pub amplification: SampleStats,
}

impl PhaseSlot {
    fn new(stage: Option<StageId>, phase: usize) -> Self {
        Self {
            stage,
            phase,
            opinionated: SampleStats::new(),
            growth: SampleStats::new(),
            bias: SampleStats::new(),
            amplification: SampleStats::new(),
        }
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-phase aggregates, in phase order.
    pub fn phases(&self) -> &[PhaseSlot] {
        &self.slots
    }

    /// Number of finished runs folded in so far (runs are separated by
    /// [`Observer::on_finish`]).
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Renders the aggregates as a table: one row per phase index with the
    /// mean of each statistic over the runs (blank where a statistic was
    /// never defined).
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(PHASES_HEADERS.to_vec());
        for slot in &self.slots {
            let mean_or_dash = |stats: &SampleStats, render: &dyn Fn(f64) -> String| {
                if stats.is_empty() {
                    "-".to_string()
                } else {
                    render(stats.mean())
                }
            };
            table.push_row(vec![
                slot.stage.map_or_else(|| "-".to_string(), |s| s.to_string()),
                slot.phase.to_string(),
                format!("{:.4}", slot.opinionated.mean()),
                mean_or_dash(&slot.growth, &|m| format!("{m:.1}")),
                mean_or_dash(&slot.bias, &|m| format!("{m:+.4}")),
                mean_or_dash(&slot.amplification, &|m| format!("{m:.2}x")),
            ]);
        }
        table
    }
}

impl Observer for OnlineStats {
    fn on_phase_end(&mut self, snapshot: &PhaseSnapshot) {
        if self.cursor == self.slots.len() {
            self.slots
                .push(PhaseSlot::new(snapshot.stage(), snapshot.phase()));
        }
        let slot = &mut self.slots[self.cursor];
        let fraction = snapshot.opinionated_fraction();
        slot.opinionated.push(fraction);
        if let Some(previous) = self.previous_fraction {
            if previous > 0.0 {
                slot.growth.push(fraction / previous);
            }
        }
        if let Some(bias) = snapshot.bias() {
            slot.bias.push(bias);
            if let Some(previous) = self.previous_bias {
                if previous > 0.0 {
                    slot.amplification.push(bias / previous);
                }
            }
        }
        self.previous_fraction = Some(fraction);
        self.previous_bias = snapshot.bias();
        self.cursor += 1;
    }

    fn on_finish(&mut self) {
        self.cursor = 0;
        self.runs += 1;
        self.previous_fraction = None;
        self.previous_bias = None;
    }
}

/// Streams one JSON line per finished phase to a [`Write`], flushing after
/// every line, so a long run can be watched (or piped into `jq`, a
/// dashboard, …) while it executes instead of after it.
///
/// Rows use the canonical trajectory columns ([`TRAJECTORY_HEADERS`]),
/// optionally prefixed with fixed context cells (the sweep-point
/// coordinates, a trial index, …) via [`with_prefix`](Self::with_prefix);
/// the row format is byte-compatible with
/// [`Table::to_json_lines`].
///
/// Write errors do not interrupt the run (observers are infallible by
/// design); the first one is kept and can be inspected with
/// [`error`](Self::error).
///
/// ```
/// use gossip_analysis::observe::StreamSink;
/// use noisy_channel::NoiseMatrix;
/// use plurality_core::{ExecutionBackend, ProtocolParams, TwoStageProtocol};
/// use pushsim::Opinion;
///
/// # fn main() -> Result<(), plurality_core::ProtocolError> {
/// let noise = NoiseMatrix::uniform(2, 0.35).expect("valid noise");
/// let params = ProtocolParams::builder(400, 2).epsilon(0.35).seed(5).build()?;
/// let protocol = TwoStageProtocol::new(params, noise)?;
/// let mut out = Vec::new();
/// let mut sink = StreamSink::new(&mut out);
/// protocol.session().run_rumor_spreading_on(
///     ExecutionBackend::Auto,
///     Opinion::new(0),
///     &mut sink,
/// )?;
/// assert!(sink.error().is_none());
/// let text = String::from_utf8(out).expect("JSON lines are UTF-8");
/// assert!(text.lines().all(|l| l.starts_with("{\"stage\":")));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct StreamSink<W: Write> {
    out: W,
    headers: Vec<String>,
    prefix: Vec<String>,
    population: bool,
    previous_bias: Option<f64>,
    error: Option<std::io::Error>,
}

impl<W: Write> StreamSink<W> {
    /// A sink emitting bare trajectory rows.
    pub fn new(out: W) -> Self {
        Self::with_prefix::<&str>(out, &[], &[])
    }

    /// A sink whose every row starts with the given fixed context cells
    /// (`prefix_headers` and `prefix` must have equal lengths) before the
    /// trajectory columns.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_headers` and `prefix` have different lengths.
    pub fn with_prefix<S: AsRef<str>>(out: W, prefix_headers: &[S], prefix: &[S]) -> Self {
        assert_eq!(
            prefix_headers.len(),
            prefix.len(),
            "one prefix cell per prefix header"
        );
        let mut headers: Vec<String> = prefix_headers
            .iter()
            .map(|s| s.as_ref().to_string())
            .collect();
        headers.extend(TRAJECTORY_HEADERS.iter().map(|h| h.to_string()));
        Self {
            out,
            headers,
            prefix: prefix.iter().map(|s| s.as_ref().to_string()).collect(),
            population: false,
            previous_bias: None,
            error: None,
        }
    }

    /// Appends a trailing `population` column carrying each snapshot's
    /// live node count — the per-phase population trajectory of a run
    /// under churn.
    pub fn with_population(mut self) -> Self {
        if !self.population {
            self.population = true;
            self.headers.push("population".to_string());
        }
        self
    }

    /// The first write error encountered, if any.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Consumes the sink and returns the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> Observer for StreamSink<W> {
    fn on_phase_end(&mut self, snapshot: &PhaseSnapshot) {
        let mut row = self.prefix.clone();
        row.extend(trajectory_row(snapshot, self.previous_bias));
        if self.population {
            row.push(snapshot.distribution().num_nodes().to_string());
        }
        self.previous_bias = snapshot.bias();
        if self.error.is_none() {
            let result = writeln!(self.out, "{}", json_line(&self.headers, &row))
                .and_then(|()| self.out.flush());
            if let Err(e) = result {
                self.error = Some(e);
            }
        }
    }

    fn on_finish(&mut self) {
        self.previous_bias = None;
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Records when the opinionated fraction first reaches a threshold.
///
/// With the threshold at `1.0` (the default) this is the *dissemination
/// time* of the paper's rumor-spreading problem — the number of rounds
/// until every agent holds some opinion. Under population churn the
/// fraction is measured against the *live* population of each snapshot, so
/// joiners arriving undecided push the crossing later, exactly like they
/// do in the real process.
///
/// The observer is single-crossing: once the threshold is reached the
/// recorded rounds never change, even if churn later dilutes the fraction
/// below the threshold again (dissemination is about the first time
/// everyone was reached). Reuse across runs via [`clear`](Self::clear).
#[derive(Debug, Clone)]
pub struct DisseminationTime {
    threshold: f64,
    rounds: Option<u64>,
    phases: Option<usize>,
    seen: usize,
}

impl Default for DisseminationTime {
    fn default() -> Self {
        Self::new()
    }
}

impl DisseminationTime {
    /// Records the first time *everyone* is opinionated (threshold 1.0).
    pub fn new() -> Self {
        Self::with_threshold(1.0)
    }

    /// Records the first time the opinionated fraction reaches
    /// `threshold` (clamped meaningfully to `(0, 1]` by the caller; the
    /// observer just compares).
    pub fn with_threshold(threshold: f64) -> Self {
        Self {
            threshold,
            rounds: None,
            phases: None,
            seen: 0,
        }
    }

    /// Total rounds elapsed when the threshold was first reached, or
    /// `None` if the run never got there.
    pub fn rounds(&self) -> Option<u64> {
        self.rounds
    }

    /// Number of finished phases (cumulative, across stages) when the
    /// threshold was first reached.
    pub fn phases(&self) -> Option<usize> {
        self.phases
    }

    /// Forgets the recorded crossing (for reuse across runs).
    pub fn clear(&mut self) {
        self.rounds = None;
        self.phases = None;
        self.seen = 0;
    }
}

impl Observer for DisseminationTime {
    fn on_phase_end(&mut self, snapshot: &PhaseSnapshot) {
        let index = self.seen;
        self.seen += 1;
        if self.rounds.is_none() && snapshot.opinionated_fraction() >= self.threshold {
            self.rounds = Some(snapshot.total_rounds());
            self.phases = Some(index);
        }
    }
}

/// One completed recovery recorded by [`ReconvergenceTime`]: the bias held
/// the threshold, fell below it, and climbed back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reconvergence {
    /// Total rounds elapsed at the first observation *below* the
    /// threshold (when the disruption became visible).
    pub lost_at: u64,
    /// Total rounds elapsed at the first observation back *at or above*
    /// the threshold.
    pub recovered_at: u64,
}

impl Reconvergence {
    /// Rounds the system spent below the threshold.
    pub fn rounds(&self) -> u64 {
        self.recovered_at - self.lost_at
    }
}

/// Measures how long the system needs to win a bias threshold back after
/// a temporal disruption knocked it below.
///
/// The observer runs a three-state machine over the per-phase bias: it
/// waits for the bias to reach `threshold` the first time (initial
/// convergence — not counted as a recovery), then every excursion below
/// the threshold opens a disruption window that closes when the bias is
/// back at or above it. Each closed window becomes a [`Reconvergence`];
/// an undefined bias (nobody opinionated) counts as *below*. This is the
/// observable behind the `burst` experiment: schedule a noise or churn
/// burst mid-run and read off how many rounds the consensus needs to heal.
#[derive(Debug, Clone)]
pub struct ReconvergenceTime {
    threshold: f64,
    state: ReconvergenceState,
    events: Vec<Reconvergence>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ReconvergenceState {
    /// The bias has not yet reached the threshold at all.
    Converging,
    /// The bias is at or above the threshold.
    Holding,
    /// The bias fell below the threshold at the recorded round count.
    Disrupted { lost_at: u64 },
}

impl ReconvergenceTime {
    /// An observer for recoveries of the given bias threshold.
    pub fn new(threshold: f64) -> Self {
        Self {
            threshold,
            state: ReconvergenceState::Converging,
            events: Vec::new(),
        }
    }

    /// The completed recoveries, in order of occurrence.
    pub fn events(&self) -> &[Reconvergence] {
        &self.events
    }

    /// The slowest completed recovery, in rounds.
    pub fn max_rounds(&self) -> Option<u64> {
        self.events.iter().map(Reconvergence::rounds).max()
    }

    /// The round count at which a still-open disruption started, if the
    /// run ended (or currently stands) below the threshold after having
    /// reached it.
    pub fn unrecovered_since(&self) -> Option<u64> {
        match self.state {
            ReconvergenceState::Disrupted { lost_at } => Some(lost_at),
            _ => None,
        }
    }

    /// Forgets all recorded events and re-arms the initial convergence
    /// (for reuse across runs).
    pub fn clear(&mut self) {
        self.state = ReconvergenceState::Converging;
        self.events.clear();
    }
}

impl Observer for ReconvergenceTime {
    fn on_phase_end(&mut self, snapshot: &PhaseSnapshot) {
        let holds = snapshot.bias().is_some_and(|b| b >= self.threshold);
        self.state = match (self.state, holds) {
            (ReconvergenceState::Converging, true) => ReconvergenceState::Holding,
            (ReconvergenceState::Converging, false) => ReconvergenceState::Converging,
            (ReconvergenceState::Holding, true) => ReconvergenceState::Holding,
            (ReconvergenceState::Holding, false) => ReconvergenceState::Disrupted {
                lost_at: snapshot.total_rounds(),
            },
            (ReconvergenceState::Disrupted { lost_at }, true) => {
                self.events.push(Reconvergence {
                    lost_at,
                    recovered_at: snapshot.total_rounds(),
                });
                ReconvergenceState::Holding
            }
            (state @ ReconvergenceState::Disrupted { .. }, false) => state,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pushsim::OpinionDistribution;

    fn snapshot(
        stage: Option<StageId>,
        phase: usize,
        counts: Vec<usize>,
        undecided: usize,
        bias: Option<f64>,
    ) -> PhaseSnapshot {
        let distribution = OpinionDistribution::from_counts(counts, undecided).unwrap();
        PhaseSnapshot::new(stage, phase, 10, 10, 50, 50, distribution, bias)
    }

    #[test]
    fn trajectory_rows_follow_the_f5_format() {
        // Stage 1 rows never show an amplification ratio.
        let s1 = snapshot(Some(StageId::One), 0, vec![40, 10], 50, Some(0.6));
        assert_eq!(
            trajectory_row(&s1, Some(0.3)),
            vec!["stage 1", "0", "10", "0.500", "+0.6000", "-", "complete"]
        );
        // Stage 2 rows show it once the previous bias is positive.
        let s2 = snapshot(Some(StageId::Two), 1, vec![90, 10], 0, Some(0.8));
        assert_eq!(
            trajectory_row(&s2, Some(0.4)),
            vec!["stage 2", "1", "10", "1.000", "+0.8000", "2.00x", "complete"]
        );
        assert_eq!(trajectory_row(&s2, None)[5], "-");
        assert_eq!(trajectory_row(&s2, Some(0.0))[5], "-");
        // Stage-less (dynamics) rows behave like Stage 2.
        let dynamics = snapshot(None, 3, vec![90, 10], 0, Some(0.8));
        let row = trajectory_row(&dynamics, Some(0.4));
        assert_eq!(row[0], "-");
        assert_eq!(row[5], "2.00x");
        // The topology label rides along in the final column.
        let ring = snapshot(Some(StageId::One), 0, vec![40, 10], 50, Some(0.6))
            .with_topology("ring");
        assert_eq!(trajectory_row(&ring, None)[6], "ring");
        // Undefined bias renders as a dash.
        let empty = snapshot(Some(StageId::One), 0, vec![0, 0], 100, None);
        assert_eq!(trajectory_row(&empty, None)[4], "-");
    }

    #[test]
    fn recorder_collects_snapshots_and_threads_the_previous_bias() {
        let mut recorder = TrajectoryRecorder::new();
        assert!(recorder.is_empty());
        recorder.on_phase_end(&snapshot(Some(StageId::One), 0, vec![40, 10], 50, Some(0.2)));
        recorder.on_phase_end(&snapshot(Some(StageId::Two), 0, vec![80, 20], 0, Some(0.6)));
        recorder.on_phase_end(&snapshot(Some(StageId::Two), 1, vec![100, 0], 0, Some(1.0)));
        assert_eq!(recorder.len(), 3);
        let table = recorder.to_table();
        assert_eq!(table.headers(), &TRAJECTORY_HEADERS.map(String::from));
        let rows = table.rows();
        assert_eq!(rows[0][5], "-");
        assert_eq!(rows[1][5], "3.00x", "0.2 -> 0.6 across the stage boundary");
        assert_eq!(rows[2][5], "1.67x");
        recorder.clear();
        assert!(recorder.is_empty());
    }

    #[test]
    fn online_stats_aggregate_across_runs() {
        let mut stats = OnlineStats::new();
        for run in 0..2u64 {
            let wobble = run as f64 * 0.1;
            stats.on_phase_end(&snapshot(Some(StageId::One), 0, vec![10, 0], 90, Some(1.0)));
            stats.on_phase_end(&snapshot(
                Some(StageId::One),
                1,
                vec![50, 0],
                50,
                Some(1.0 - wobble),
            ));
            stats.on_finish();
        }
        assert_eq!(stats.runs(), 2);
        let slots = stats.phases();
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].opinionated.len(), 2);
        // Growth is only defined from the second phase of each run.
        assert_eq!(slots[0].growth.len(), 0);
        assert_eq!(slots[1].growth.len(), 2);
        assert!((slots[1].growth.mean() - 5.0).abs() < 1e-12);
        // Amplification 0.95/1.0 on the second run, 1.0 on the first.
        assert_eq!(slots[1].amplification.len(), 2);
        let table = stats.to_table();
        assert_eq!(table.num_rows(), 2);
        assert_eq!(table.rows()[1][3], "5.0");
    }

    #[test]
    fn online_stats_tolerate_runs_of_unequal_length() {
        // Stop conditions make per-run phase counts differ; the aggregates
        // must keep per-phase-index sample counts honest instead of
        // misaligning later runs.
        let mut stats = OnlineStats::new();
        // Run 1: three phases.
        stats.on_phase_end(&snapshot(Some(StageId::One), 0, vec![10, 0], 90, Some(1.0)));
        stats.on_phase_end(&snapshot(Some(StageId::One), 1, vec![50, 0], 50, Some(1.0)));
        stats.on_phase_end(&snapshot(Some(StageId::Two), 0, vec![90, 10], 0, Some(0.8)));
        stats.on_finish();
        // Run 2: stopped after one phase.
        stats.on_phase_end(&snapshot(Some(StageId::One), 0, vec![20, 0], 80, Some(1.0)));
        stats.on_finish();
        // Run 3: two phases.
        stats.on_phase_end(&snapshot(Some(StageId::One), 0, vec![10, 0], 90, Some(1.0)));
        stats.on_phase_end(&snapshot(Some(StageId::One), 1, vec![40, 0], 60, Some(1.0)));
        stats.on_finish();

        assert_eq!(stats.runs(), 3);
        let slots = stats.phases();
        assert_eq!(slots.len(), 3, "the longest run defines the phase axis");
        assert_eq!(slots[0].opinionated.len(), 3, "every run reached phase 0");
        assert_eq!(slots[1].opinionated.len(), 2, "two runs reached phase 1");
        assert_eq!(slots[2].opinionated.len(), 1, "one run reached phase 2");
        // Growth after a truncated run restarts cleanly: the short run
        // must not leak its last fraction into the next run's phase 0.
        assert_eq!(slots[0].growth.len(), 0);
        assert_eq!(slots[1].growth.len(), 2);
        // The rendered table still has one row per phase index.
        assert_eq!(stats.to_table().num_rows(), 3);
    }

    #[test]
    fn stream_sink_emits_one_flushed_json_line_per_phase() {
        let mut out = Vec::new();
        {
            let mut sink = StreamSink::with_prefix(&mut out, &["trial"], &["0"]);
            sink.on_phase_end(&snapshot(Some(StageId::One), 0, vec![40, 10], 50, Some(0.2)));
            sink.on_phase_end(&snapshot(Some(StageId::Two), 0, vec![80, 20], 0, Some(0.6)));
            sink.on_finish();
            assert!(sink.error().is_none());
        }
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"trial\":0,\"stage\":\"stage 1\",\"phase\":0,\"rounds\":10,\
             \"opinionated\":0.500,\"bias\":0.2000,\"amplification\":\"-\",\
             \"topology\":\"complete\"}"
        );
        assert!(lines[1].contains("\"amplification\":\"3.00x\""));
    }

    fn timed_snapshot(
        total_rounds: u64,
        counts: Vec<usize>,
        undecided: usize,
        bias: Option<f64>,
    ) -> PhaseSnapshot {
        let distribution = OpinionDistribution::from_counts(counts, undecided).unwrap();
        PhaseSnapshot::new(None, 0, 10, total_rounds, 50, 50, distribution, bias)
    }

    #[test]
    fn dissemination_time_records_the_first_crossing_only() {
        let mut obs = DisseminationTime::new();
        assert_eq!(obs.rounds(), None);
        obs.on_phase_end(&timed_snapshot(4, vec![30, 10], 60, Some(0.5)));
        assert_eq!(obs.rounds(), None, "still 60 undecided agents");
        obs.on_phase_end(&timed_snapshot(8, vec![80, 20], 0, Some(0.6)));
        assert_eq!(obs.rounds(), Some(8));
        assert_eq!(obs.phases(), Some(1));
        // Churn diluting the fraction afterwards does not reopen it.
        obs.on_phase_end(&timed_snapshot(12, vec![80, 20], 10, Some(0.6)));
        assert_eq!(obs.rounds(), Some(8));
        obs.clear();
        assert_eq!(obs.rounds(), None);
        // A lower threshold crosses earlier.
        let mut half = DisseminationTime::with_threshold(0.4);
        half.on_phase_end(&timed_snapshot(4, vec![30, 10], 60, Some(0.5)));
        assert_eq!(half.rounds(), Some(4));
        assert_eq!(half.phases(), Some(0));
    }

    #[test]
    fn reconvergence_time_tracks_disruption_windows() {
        let mut obs = ReconvergenceTime::new(0.5);
        // The initial climb to the threshold is not a recovery.
        obs.on_phase_end(&timed_snapshot(2, vec![40, 30], 30, Some(0.1)));
        obs.on_phase_end(&timed_snapshot(4, vec![80, 20], 0, Some(0.6)));
        assert!(obs.events().is_empty());
        assert_eq!(obs.unrecovered_since(), None);
        // A burst knocks the bias down...
        obs.on_phase_end(&timed_snapshot(6, vec![55, 45], 0, Some(0.1)));
        assert_eq!(obs.unrecovered_since(), Some(6));
        obs.on_phase_end(&timed_snapshot(8, vec![60, 40], 0, Some(0.2)));
        // ...and the system heals two observations later.
        obs.on_phase_end(&timed_snapshot(10, vec![85, 15], 0, Some(0.7)));
        assert_eq!(obs.events().len(), 1);
        assert_eq!(obs.events()[0].lost_at, 6);
        assert_eq!(obs.events()[0].recovered_at, 10);
        assert_eq!(obs.events()[0].rounds(), 4);
        assert_eq!(obs.max_rounds(), Some(4));
        assert_eq!(obs.unrecovered_since(), None);
        // An undefined bias counts as below the threshold.
        obs.on_phase_end(&timed_snapshot(12, vec![0, 0], 100, None));
        assert_eq!(obs.unrecovered_since(), Some(12));
        obs.on_phase_end(&timed_snapshot(13, vec![90, 10], 0, Some(0.8)));
        assert_eq!(obs.events().len(), 2);
        assert_eq!(obs.max_rounds(), Some(4), "the second recovery took 1 round");
        obs.clear();
        assert!(obs.events().is_empty());
    }

    #[test]
    fn stream_sink_records_write_errors_instead_of_panicking() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("pipe closed"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = StreamSink::new(Broken);
        sink.on_phase_end(&snapshot(Some(StageId::One), 0, vec![1, 0], 9, Some(1.0)));
        assert!(sink.error().is_some());
    }
}
