//! Invariant oracles: structured pass/fail judgments over protocol runs.
//!
//! A fault-injection campaign (the `xp campaign` driver) executes many
//! seeded runs and needs a machine-checkable notion of "this run behaved".
//! An [`Oracle`] watches a run at phase granularity (through the core
//! observation layer's [`PhaseSnapshot`]s) and judges the finished
//! [`Outcome`]; when an invariant breaks it returns a structured
//! [`Violation`] naming the oracle, the phase, and what went wrong — the
//! campaign engine turns the first violating seed into a replay command.
//!
//! Built-in oracles:
//!
//! * [`CountConservation`] — the population follows its deterministic
//!   size trajectory: without churn every snapshot's distribution must
//!   account for exactly `n` agents; under population churn it must match
//!   the phase-indexed size the churn arithmetic prescribes
//!   ([`ChurnSpec::population_after`]). Message drops and duplications
//!   alter *message* counts, never *agent* counts, so this invariant must
//!   hold under every fault family (both backends fold crashed/Byzantine
//!   pools back into their reported distributions).
//! * [`ConsensusCorrectness`] — if the run converged, it converged on the
//!   planted opinion (the rumor source's opinion, or the initial
//!   plurality). Byzantine pushes towards a fixed wrong opinion are
//!   expected to break exactly this oracle once their fraction outweighs
//!   the initial bias.
//! * [`BiasMonotonicity`] — the bias towards the reference opinion never
//!   falls by more than a tolerance between consecutive observations once
//!   both are defined. The paper's analysis amplifies the bias phase over
//!   phase (Lemmas 7 and 12, Proposition 1); per-run fluctuations are
//!   real, so the tolerance absorbs them and only collapses are flagged.
//! * [`PaperBound`] — the run finished within `slack × ln(n)/ε²` rounds,
//!   the paper's Theorem 1/2 round envelope with an explicit slack
//!   constant. Most informative when the run stops on consensus (the
//!   campaign's default stop condition) so the measured round count is the
//!   actual convergence time rather than the fixed schedule length.
//!
//! Oracles are deliberately *observational*: they read snapshots and
//! outcomes, never RNG streams, so attaching them cannot perturb the run
//! they judge (the core observation layer guarantees this).

use plurality_core::bounds::rounds_bound;
use plurality_core::{Outcome, PhaseSnapshot};
use pushsim::ChurnSpec;

/// One broken invariant, reported by an [`Oracle`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Violation {
    oracle: String,
    phase: Option<u64>,
    message: String,
}

impl Violation {
    /// Builds a violation detected at the end of the run.
    pub fn at_finish(oracle: &str, message: impl Into<String>) -> Self {
        Self {
            oracle: oracle.to_string(),
            phase: None,
            message: message.into(),
        }
    }

    /// Builds a violation detected at a phase boundary (`phase` is the
    /// cumulative observation index across both stages).
    pub fn at_phase(oracle: &str, phase: u64, message: impl Into<String>) -> Self {
        Self {
            oracle: oracle.to_string(),
            phase: Some(phase),
            message: message.into(),
        }
    }

    /// The name of the oracle that detected the violation.
    pub fn oracle(&self) -> &str {
        &self.oracle
    }

    /// The cumulative phase observation index at detection, or `None` if
    /// the violation was detected on the finished outcome.
    pub fn phase(&self) -> Option<u64> {
        self.phase
    }

    /// Human-readable description of what broke.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.phase {
            Some(phase) => write!(f, "[{}] phase {}: {}", self.oracle, phase, self.message),
            None => write!(f, "[{}] at finish: {}", self.oracle, self.message),
        }
    }
}

/// An invariant judged over one protocol run.
///
/// The campaign engine calls [`observe`](Oracle::observe) at every phase
/// boundary (in observation order) and [`judge`](Oracle::judge) once on the
/// finished outcome; each may report at most one violation — an oracle that
/// has already tripped should stay silent (the first detection carries all
/// the signal, and the replay reproduces the rest). Oracles are stateful
/// and single-use: build a fresh set per run.
pub trait Oracle {
    /// The oracle's stable name (used in reports and replay output).
    fn name(&self) -> &'static str;

    /// Inspects one phase-boundary snapshot; `index` is the cumulative
    /// observation index across stages.
    fn observe(&mut self, index: u64, snapshot: &PhaseSnapshot) -> Option<Violation> {
        let _ = (index, snapshot);
        None
    }

    /// Judges the finished run.
    fn judge(&mut self, outcome: &Outcome) -> Option<Violation> {
        let _ = outcome;
        None
    }
}

/// Checks that every observed distribution accounts for exactly the
/// expected number of agents. See the module docs: faults redistribute
/// messages and freeze agents but never create or destroy them.
///
/// Under population churn the expected size is no longer a constant: the
/// churn arithmetic is deterministic (only *which* agents leave and *what*
/// joiners believe is random), so the oracle folds the configured
/// [`ChurnSpec`] forward with
/// [`population_after`](ChurnSpec::population_after) and demands that the
/// live population of the snapshot at cumulative phase index `i` equals
/// the population after exactly `i` churn boundaries — boundary `b`
/// precedes phase `b`, and boundary 0 never churns, so the end of phase
/// `i` has seen boundaries `1..=i`. Build the churn-aware form with
/// [`with_churn`](Self::with_churn); [`new`](Self::new) keeps the
/// constant-population contract.
#[derive(Debug, Clone)]
pub struct CountConservation {
    initial_nodes: usize,
    churn: ChurnSpec,
    observed: u64,
    tripped: bool,
}

impl CountConservation {
    /// An oracle expecting `expected_nodes` agents in every snapshot.
    pub fn new(expected_nodes: usize) -> Self {
        Self::with_churn(expected_nodes, ChurnSpec::none())
    }

    /// An oracle that tracks the deterministic population trajectory the
    /// churn spec induces from `initial_nodes` agents.
    pub fn with_churn(initial_nodes: usize, churn: ChurnSpec) -> Self {
        Self {
            initial_nodes,
            churn,
            observed: 0,
            tripped: false,
        }
    }

    /// The population this oracle expects at the end of the phase with
    /// cumulative index `phase` (boundaries `1..=phase` applied).
    pub fn expected_at(&self, phase: u64) -> usize {
        self.churn.population_after(self.initial_nodes, phase)
    }
}

impl Oracle for CountConservation {
    fn name(&self) -> &'static str {
        "count-conservation"
    }

    fn observe(&mut self, index: u64, snapshot: &PhaseSnapshot) -> Option<Violation> {
        self.observed = index + 1;
        if self.tripped {
            return None;
        }
        let expected = self.expected_at(index);
        let found = snapshot.distribution().num_nodes();
        if found != expected {
            self.tripped = true;
            return Some(Violation::at_phase(
                self.name(),
                index,
                format!("distribution accounts for {found} agents, expected {expected}"),
            ));
        }
        None
    }

    fn judge(&mut self, outcome: &Outcome) -> Option<Violation> {
        if self.tripped {
            return None;
        }
        // The final distribution is the last phase's: no further boundary
        // runs after the last phase, so the expectation is the one of the
        // last observation (or the initial size if nothing was observed).
        let expected = self.expected_at(self.observed.saturating_sub(1));
        let found = outcome.final_distribution().num_nodes();
        if found != expected {
            self.tripped = true;
            return Some(Violation::at_finish(
                self.name(),
                format!("final distribution accounts for {found} agents, expected {expected}"),
            ));
        }
        None
    }
}

/// Checks that a converged run converged on the planted opinion.
#[derive(Debug, Clone, Default)]
pub struct ConsensusCorrectness;

impl ConsensusCorrectness {
    /// A fresh consensus-correctness oracle.
    pub fn new() -> Self {
        Self
    }
}

impl Oracle for ConsensusCorrectness {
    fn name(&self) -> &'static str {
        "consensus-correctness"
    }

    fn judge(&mut self, outcome: &Outcome) -> Option<Violation> {
        if outcome.consensus_reached() && !outcome.succeeded() {
            let winner = outcome
                .winning_opinion()
                .map_or_else(|| "none".to_string(), |o| o.index().to_string());
            return Some(Violation::at_finish(
                self.name(),
                format!(
                    "consensus on opinion {winner}, but the planted opinion is {}",
                    outcome.correct_opinion().index()
                ),
            ));
        }
        None
    }
}

/// Checks that the bias towards the reference opinion never falls by more
/// than `tolerance` between consecutive defined observations.
#[derive(Debug, Clone)]
pub struct BiasMonotonicity {
    tolerance: f64,
    previous: Option<f64>,
    tripped: bool,
}

impl BiasMonotonicity {
    /// An oracle tolerating per-transition bias drops up to `tolerance`
    /// (a fraction of the population, like the bias itself).
    pub fn new(tolerance: f64) -> Self {
        Self {
            tolerance,
            previous: None,
            tripped: false,
        }
    }
}

impl Oracle for BiasMonotonicity {
    fn name(&self) -> &'static str {
        "bias-monotonicity"
    }

    fn observe(&mut self, index: u64, snapshot: &PhaseSnapshot) -> Option<Violation> {
        let bias = snapshot.bias()?;
        let previous = self.previous.replace(bias);
        if self.tripped {
            return None;
        }
        if let Some(prev) = previous {
            if bias < prev - self.tolerance {
                self.tripped = true;
                return Some(Violation::at_phase(
                    self.name(),
                    index,
                    format!(
                        "bias fell from {prev:.4} to {bias:.4} (tolerance {})",
                        self.tolerance
                    ),
                ));
            }
        }
        None
    }
}

/// Checks the paper's round envelope: the run must finish within
/// `slack × ln(n)/ε²` rounds (Theorems 1 and 2 prove `O(log n / ε²)`; the
/// slack constant makes the hidden constant explicit and testable).
#[derive(Debug, Clone)]
pub struct PaperBound {
    num_nodes: usize,
    epsilon: f64,
    slack: f64,
}

impl PaperBound {
    /// An oracle for an `n`-agent run at noise parameter `epsilon`,
    /// allowing `slack` times the bare `ln(n)/ε²` scale.
    pub fn new(num_nodes: usize, epsilon: f64, slack: f64) -> Self {
        Self {
            num_nodes,
            epsilon,
            slack,
        }
    }

    /// The maximum number of rounds this oracle accepts.
    pub fn max_rounds(&self) -> f64 {
        self.slack * rounds_bound(self.num_nodes, self.epsilon)
    }
}

impl Oracle for PaperBound {
    fn name(&self) -> &'static str {
        "paper-bound"
    }

    fn judge(&mut self, outcome: &Outcome) -> Option<Violation> {
        let limit = self.max_rounds();
        if (outcome.rounds() as f64) > limit {
            return Some(Violation::at_finish(
                self.name(),
                format!(
                    "run took {} rounds, over the {limit:.0}-round envelope \
                     (slack {} x ln({})/eps^2 at eps = {})",
                    outcome.rounds(),
                    self.slack,
                    self.num_nodes,
                    self.epsilon
                ),
            ));
        }
        None
    }
}

/// A set of oracles evaluated together over one run.
///
/// The suite implements the core [`Observer`](plurality_core::Observer)
/// trait, so it plugs straight into a [`Session`](plurality_core::Session)
/// run; afterwards, [`judge`](Self::judge) folds in the outcome checks and
/// returns every violation in detection order.
#[derive(Default)]
pub struct OracleSuite {
    oracles: Vec<Box<dyn Oracle>>,
    observed_phases: u64,
    violations: Vec<Violation>,
}

impl OracleSuite {
    /// An empty suite.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an oracle to the suite.
    #[must_use]
    pub fn with(mut self, oracle: impl Oracle + 'static) -> Self {
        self.oracles.push(Box::new(oracle));
        self
    }

    /// The standard campaign suite for an `n`-agent, `ε`-noise run: count
    /// conservation, consensus correctness, bias monotonicity at the given
    /// tolerance, and the paper round envelope at the given slack.
    pub fn standard(num_nodes: usize, epsilon: f64, tolerance: f64, slack: f64) -> Self {
        Self::standard_with_churn(num_nodes, epsilon, tolerance, slack, ChurnSpec::none())
    }

    /// The standard suite for a run under population churn: identical to
    /// [`standard`](Self::standard) except that count conservation tracks
    /// the deterministic population trajectory the churn spec induces
    /// instead of a constant `n`.
    pub fn standard_with_churn(
        num_nodes: usize,
        epsilon: f64,
        tolerance: f64,
        slack: f64,
        churn: ChurnSpec,
    ) -> Self {
        Self::new()
            .with(CountConservation::with_churn(num_nodes, churn))
            .with(ConsensusCorrectness::new())
            .with(BiasMonotonicity::new(tolerance))
            .with(PaperBound::new(num_nodes, epsilon, slack))
    }

    /// Number of phase boundaries observed so far.
    pub fn observed_phases(&self) -> u64 {
        self.observed_phases
    }

    /// Folds the finished outcome into every oracle and returns all
    /// violations in detection order (empty means the run passed).
    pub fn judge(mut self, outcome: &Outcome) -> Vec<Violation> {
        for oracle in &mut self.oracles {
            if let Some(v) = oracle.judge(outcome) {
                self.violations.push(v);
            }
        }
        self.violations
    }
}

impl std::fmt::Debug for OracleSuite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleSuite")
            .field("oracles", &self.oracles.iter().map(|o| o.name()).collect::<Vec<_>>())
            .field("observed_phases", &self.observed_phases)
            .field("violations", &self.violations)
            .finish()
    }
}

impl plurality_core::Observer for OracleSuite {
    fn on_phase_end(&mut self, snapshot: &PhaseSnapshot) {
        let index = self.observed_phases;
        self.observed_phases += 1;
        for oracle in &mut self.oracles {
            if let Some(v) = oracle.observe(index, snapshot) {
                self.violations.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noisy_channel::NoiseMatrix;
    use plurality_core::{ExecutionBackend, ProtocolParams, TwoStageProtocol};
    use plurality_core::{Observer, StageId};
    use pushsim::OpinionDistribution;

    fn snapshot(counts: Vec<usize>, undecided: usize, bias: Option<f64>) -> PhaseSnapshot {
        let distribution = OpinionDistribution::from_counts(counts, undecided).unwrap();
        PhaseSnapshot::new(Some(StageId::One), 0, 5, 5, 50, 50, distribution, bias)
    }

    fn healthy_outcome() -> Outcome {
        let eps = 0.35;
        let params = ProtocolParams::builder(500, 3)
            .epsilon(eps)
            .seed(11)
            .build()
            .unwrap();
        let protocol =
            TwoStageProtocol::new(params, NoiseMatrix::uniform(3, eps).unwrap()).unwrap();
        protocol
            .run_plurality_consensus(&[200, 120, 80])
            .unwrap()
    }

    #[test]
    fn count_conservation_flags_a_shrunken_population() {
        let mut oracle = CountConservation::new(100);
        assert!(oracle.observe(0, &snapshot(vec![60, 40, 0], 0, Some(0.2))).is_none());
        let violation = oracle
            .observe(1, &snapshot(vec![50, 40, 0], 0, Some(0.1)))
            .expect("90 agents != 100");
        assert_eq!(violation.oracle(), "count-conservation");
        assert_eq!(violation.phase(), Some(1));
        // Latched: a second bad snapshot stays silent.
        assert!(oracle.observe(2, &snapshot(vec![1, 0, 0], 0, None)).is_none());
    }

    #[test]
    fn churn_aware_conservation_tracks_the_deterministic_trajectory() {
        let churn: ChurnSpec = "join(0.1)+leave(0.2)".parse().expect("valid churn");
        let mut oracle = CountConservation::with_churn(100, churn);
        // Boundary 0 never churns: phase 0 still has 100 agents.
        assert_eq!(oracle.expected_at(0), 100);
        assert!(oracle.observe(0, &snapshot(vec![60, 40, 0], 0, Some(0.2))).is_none());
        // Boundary 1: -20 leavers, +10 joiners.
        let expected = churn.population_after(100, 1);
        assert_eq!(expected, 90);
        assert!(oracle
            .observe(1, &snapshot(vec![50, 30, 0], 10, Some(0.2)))
            .is_none());
        // A population that ignores the churn arithmetic trips the oracle.
        let violation = oracle
            .observe(2, &snapshot(vec![50, 30, 0], 10, Some(0.2)))
            .expect("90 agents, but boundary 2 shrank the expectation");
        assert_eq!(violation.oracle(), "count-conservation");
        assert!(violation.message().contains(&format!(
            "expected {}",
            churn.population_after(100, 2)
        )));
    }

    #[test]
    fn consensus_correctness_accepts_healthy_runs() {
        let outcome = healthy_outcome();
        assert!(outcome.succeeded());
        assert!(ConsensusCorrectness::new().judge(&outcome).is_none());
    }

    #[test]
    fn bias_monotonicity_tolerates_small_dips_and_flags_collapses() {
        let mut oracle = BiasMonotonicity::new(0.1);
        assert!(oracle.observe(0, &snapshot(vec![60, 40, 0], 0, Some(0.5))).is_none());
        // Within tolerance.
        assert!(oracle.observe(1, &snapshot(vec![58, 42, 0], 0, Some(0.45))).is_none());
        // Undefined bias is skipped, not compared.
        assert!(oracle.observe(2, &snapshot(vec![0, 0, 0], 100, None)).is_none());
        // Collapse beyond tolerance.
        let violation = oracle
            .observe(3, &snapshot(vec![30, 70, 0], 0, Some(0.1)))
            .expect("0.45 -> 0.1 is a collapse");
        assert_eq!(violation.oracle(), "bias-monotonicity");
        assert_eq!(violation.phase(), Some(3));
    }

    #[test]
    fn paper_bound_flags_runs_over_the_envelope() {
        let outcome = healthy_outcome();
        // A generous slack accepts the calibrated schedule...
        assert!(PaperBound::new(500, 0.35, 100.0).judge(&outcome).is_none());
        // ...and a slack below the real constant rejects it.
        let violation = PaperBound::new(500, 0.35, 0.01)
            .judge(&outcome)
            .expect("0.01 x ln(n)/eps^2 is under any real run");
        assert_eq!(violation.oracle(), "paper-bound");
        assert_eq!(violation.phase(), None);
        assert!(violation.to_string().contains("at finish"));
    }

    #[test]
    fn suite_observes_a_real_run_and_passes_it() {
        let eps = 0.35;
        let params = ProtocolParams::builder(500, 3)
            .epsilon(eps)
            .seed(11)
            .build()
            .unwrap();
        let protocol =
            TwoStageProtocol::new(params, NoiseMatrix::uniform(3, eps).unwrap()).unwrap();
        let mut suite = OracleSuite::standard(500, eps, 1.0, 100.0);
        let outcome = protocol
            .session()
            .run_plurality_consensus_on(ExecutionBackend::Agent, &[200, 120, 80], &mut suite)
            .unwrap();
        assert_eq!(
            suite.observed_phases() as usize,
            outcome.phase_records().len()
        );
        assert!(suite.judge(&outcome).is_empty(), "a fault-free run passes");
    }

    #[test]
    fn suite_collects_violations_in_detection_order() {
        let mut suite = OracleSuite::new()
            .with(CountConservation::new(100))
            .with(BiasMonotonicity::new(0.0));
        suite.on_phase_end(&snapshot(vec![60, 40, 0], 0, Some(0.5)));
        suite.on_phase_end(&snapshot(vec![30, 40, 0], 0, Some(0.1)));
        let outcome = healthy_outcome();
        let violations = suite.judge(&outcome);
        // Snapshot 1 trips both conservation (70 agents) and monotonicity
        // (0.5 -> 0.1); conservation was registered first.
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].oracle(), "count-conservation");
        assert_eq!(violations[1].oracle(), "bias-monotonicity");
    }

    #[test]
    fn violations_render_with_phase_context() {
        let v = Violation::at_phase("count-conservation", 3, "lost 2 agents");
        assert_eq!(v.to_string(), "[count-conservation] phase 3: lost 2 agents");
        let v = Violation::at_finish("paper-bound", "too slow");
        assert_eq!(v.to_string(), "[paper-bound] at finish: too slow");
    }
}
