//! Plain-text tables and CSV output for the experiment harness.

use std::fmt;

/// A simple column-aligned table that can also render itself as CSV.
///
/// The experiment binaries print these tables to stdout; EXPERIMENTS.md
/// embeds their output verbatim.
///
/// ```
/// use gossip_analysis::table::Table;
///
/// let mut table = Table::new(vec!["n", "rounds"]);
/// table.push_row(vec!["1000".into(), "813".into()]);
/// table.push_row(vec!["2000".into(), "905".into()]);
/// let text = table.to_string();
/// assert!(text.contains("rounds"));
/// assert_eq!(table.to_csv().lines().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if no headers are given.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The data rows (each a vector of cells, one per column) — used by the
    /// scenario runner and tests to post-process results without re-parsing
    /// the rendered text.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The index of the column named `name`, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == name)
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different number of cells than there are
    /// columns.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Convenience helper: formats every cell with `Display` and appends the
    /// row.
    pub fn push_display_row<D: fmt::Display>(&mut self, row: Vec<D>) {
        self.push_row(row.into_iter().map(|d| d.to_string()).collect());
    }

    /// Renders the table as [JSON Lines](https://jsonlines.org/): one JSON
    /// object per data row, keyed by the column headers, all values as
    /// strings. This is the machine-readable form behind the experiment
    /// binaries' shared `--json` flag, so figure pipelines can consume
    /// experiment output with `jq` or a dataframe library without parsing
    /// aligned columns.
    ///
    /// ```
    /// use gossip_analysis::table::Table;
    ///
    /// let mut table = Table::new(vec!["n", "rounds"]);
    /// table.push_row(vec!["1000".into(), "813".into()]);
    /// assert_eq!(table.to_json_lines(), "{\"n\":\"1000\",\"rounds\":\"813\"}\n");
    /// ```
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&json_line(&self.headers, row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (headers first, comma-separated; cells
    /// containing commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Renders one JSON object (without a trailing newline) from parallel
/// header/cell slices, all values as strings — the row format shared by
/// [`Table::to_json_lines`] and the streaming observers, so a streamed run
/// and its final table are byte-compatible row by row.
///
/// # Panics
///
/// Panics if `headers` and `cells` have different lengths.
pub fn json_line<H: AsRef<str>, C: AsRef<str>>(headers: &[H], cells: &[C]) -> String {
    assert_eq!(
        headers.len(),
        cells.len(),
        "a JSON row needs exactly one cell per header"
    );
    let mut out = String::new();
    out.push('{');
    for (i, (header, cell)) in headers.iter().zip(cells).enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_escape_into(&mut out, header.as_ref());
        out.push(':');
        json_escape_into(&mut out, cell.as_ref());
    }
    out.push('}');
    out
}

/// Appends `s` to `out` as a JSON string literal (quotes, backslashes and
/// control characters escaped).
fn json_escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths: max of header and cells.
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, width)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total_width: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total_width))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut table = Table::new(vec!["name", "value"]);
        table.push_row(vec!["alpha".into(), "1".into()]);
        table.push_display_row(vec!["beta", "23456"]);
        table
    }

    #[test]
    fn display_aligns_columns() {
        let text = sample_table().to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with('-'));
        assert_eq!(lines.len(), 4);
        // Both data rows start their second column at the same offset.
        let offset_a = lines[2].find('1').unwrap();
        let offset_b = lines[3].find('2').unwrap();
        assert_eq!(offset_a, offset_b);
    }

    #[test]
    fn csv_output_escapes_special_cells() {
        let mut table = Table::new(vec!["a", "b"]);
        table.push_row(vec!["x,y".into(), "quote\"inside".into()]);
        let csv = table.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"quote\"\"inside\""));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn json_lines_emit_one_object_per_row() {
        let table = sample_table();
        let json = table.to_json_lines();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"name\":\"alpha\",\"value\":\"1\"}");
        assert_eq!(lines[1], "{\"name\":\"beta\",\"value\":\"23456\"}");
    }

    #[test]
    fn json_lines_escape_special_characters() {
        let mut table = Table::new(vec!["a"]);
        table.push_row(vec!["quote\" back\\slash\nnewline\ttab".into()]);
        let json = table.to_json_lines();
        assert_eq!(
            json,
            "{\"a\":\"quote\\\" back\\\\slash\\nnewline\\ttab\"}\n"
        );
    }

    #[test]
    fn accessors() {
        let table = sample_table();
        assert_eq!(table.headers(), &["name".to_string(), "value".to_string()]);
        assert_eq!(table.num_rows(), 2);
        assert_eq!(table.rows()[1][0], "beta");
        assert_eq!(table.column_index("value"), Some(1));
        assert_eq!(table.column_index("missing"), None);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_length_panics() {
        let mut table = Table::new(vec!["only one"]);
        table.push_row(vec!["a".into(), "b".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(Vec::<String>::new());
    }
}
