//! Plain-text tables and CSV output for the experiment harness.

use std::fmt;

/// A simple column-aligned table that can also render itself as CSV.
///
/// The experiment binaries print these tables to stdout; EXPERIMENTS.md
/// embeds their output verbatim.
///
/// ```
/// use gossip_analysis::table::Table;
///
/// let mut table = Table::new(vec!["n", "rounds"]);
/// table.push_row(vec!["1000".into(), "813".into()]);
/// table.push_row(vec!["2000".into(), "905".into()]);
/// let text = table.to_string();
/// assert!(text.contains("rounds"));
/// assert_eq!(table.to_csv().lines().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if no headers are given.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The data rows (each a vector of cells, one per column) — used by the
    /// scenario runner and tests to post-process results without re-parsing
    /// the rendered text.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The index of the column named `name`, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == name)
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different number of cells than there are
    /// columns.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Convenience helper: formats every cell with `Display` and appends the
    /// row.
    pub fn push_display_row<D: fmt::Display>(&mut self, row: Vec<D>) {
        self.push_row(row.into_iter().map(|d| d.to_string()).collect());
    }

    /// Renders the table as [JSON Lines](https://jsonlines.org/): one JSON
    /// object per data row, keyed by the column headers. Cells that parse
    /// as finite numbers are emitted as bare JSON numbers (so `"n": 1000`,
    /// not `"n": "1000"` — consumers get typed values without a second
    /// parse); non-finite numeric cells become `null`; everything else
    /// stays a JSON string. This is the machine-readable form behind the
    /// experiment binaries' shared `--json` flag, so figure pipelines can
    /// consume experiment output with `jq` or a dataframe library without
    /// parsing aligned columns.
    ///
    /// ```
    /// use gossip_analysis::table::Table;
    ///
    /// let mut table = Table::new(vec!["n", "rounds", "note"]);
    /// table.push_row(vec!["1000".into(), "813".into(), "ok".into()]);
    /// assert_eq!(
    ///     table.to_json_lines(),
    ///     "{\"n\":1000,\"rounds\":813,\"note\":\"ok\"}\n"
    /// );
    /// ```
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&json_line(&self.headers, row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (headers first, comma-separated; cells
    /// containing commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Renders one JSON object (without a trailing newline) from parallel
/// header/cell slices — the row format shared by
/// [`Table::to_json_lines`] and the streaming observers, so a streamed run
/// and its final table are byte-compatible row by row.
///
/// Values are **typed**: a cell that parses as a finite `f64` is emitted
/// as a bare JSON number (preserving the cell's own formatting when it is
/// already valid JSON number syntax, e.g. trailing zeros in `"0.250"`; a
/// leading `+` sign is stripped), a cell that parses as a non-finite
/// number (`inf`, `NaN`) becomes `null`, and any other cell is emitted as
/// a JSON string. Keys are always strings.
///
/// # Panics
///
/// Panics if `headers` and `cells` have different lengths.
pub fn json_line<H: AsRef<str>, C: AsRef<str>>(headers: &[H], cells: &[C]) -> String {
    assert_eq!(
        headers.len(),
        cells.len(),
        "a JSON row needs exactly one cell per header"
    );
    let mut out = String::new();
    out.push('{');
    for (i, (header, cell)) in headers.iter().zip(cells).enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_escape_into(&mut out, header.as_ref());
        out.push(':');
        json_value_into(&mut out, cell.as_ref());
    }
    out.push('}');
    out
}

/// Appends one cell to `out` as a typed JSON value (see [`json_line`]).
fn json_value_into(out: &mut String, cell: &str) {
    match cell.parse::<f64>() {
        Ok(value) if value.is_finite() => {
            // Keep the cell's own formatting whenever it is already a
            // valid JSON number token (Rust's f64 grammar is wider than
            // JSON's: leading '+', "3.", ".5", "inf" …).
            let unsigned = cell.strip_prefix('+').unwrap_or(cell);
            if is_json_number(unsigned) {
                out.push_str(unsigned);
            } else {
                // Rare fallback (e.g. "3." or ".5"): normalize through the
                // parsed value.
                out.push_str(&value.to_string());
            }
        }
        Ok(_) => out.push_str("null"),
        Err(_) => json_escape_into(out, cell),
    }
}

/// `true` if `s` is a valid JSON number token:
/// `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`.
fn is_json_number(s: &str) -> bool {
    let mut chars = s.as_bytes();
    if let [b'-', rest @ ..] = chars {
        chars = rest;
    }
    // Integer part: "0" alone or a non-zero leading digit run.
    let digits = chars.iter().take_while(|c| c.is_ascii_digit()).count();
    if digits == 0 || (digits > 1 && chars[0] == b'0') {
        return false;
    }
    chars = &chars[digits..];
    if let [b'.', rest @ ..] = chars {
        let frac = rest.iter().take_while(|c| c.is_ascii_digit()).count();
        if frac == 0 {
            return false;
        }
        chars = &rest[frac..];
    }
    if let [b'e' | b'E', rest @ ..] = chars {
        let rest = match rest {
            [b'+' | b'-', digits @ ..] => digits,
            digits => digits,
        };
        let exp = rest.iter().take_while(|c| c.is_ascii_digit()).count();
        if exp == 0 {
            return false;
        }
        chars = &rest[exp..];
    }
    chars.is_empty()
}

/// Appends `s` to `out` as a JSON string literal (quotes, backslashes and
/// control characters escaped).
fn json_escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths: max of header and cells.
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, width)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total_width: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total_width))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut table = Table::new(vec!["name", "value"]);
        table.push_row(vec!["alpha".into(), "1".into()]);
        table.push_display_row(vec!["beta", "23456"]);
        table
    }

    #[test]
    fn display_aligns_columns() {
        let text = sample_table().to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with('-'));
        assert_eq!(lines.len(), 4);
        // Both data rows start their second column at the same offset.
        let offset_a = lines[2].find('1').unwrap();
        let offset_b = lines[3].find('2').unwrap();
        assert_eq!(offset_a, offset_b);
    }

    #[test]
    fn csv_output_escapes_special_cells() {
        let mut table = Table::new(vec!["a", "b"]);
        table.push_row(vec!["x,y".into(), "quote\"inside".into()]);
        let csv = table.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"quote\"\"inside\""));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn json_lines_emit_one_object_per_row_with_typed_cells() {
        let table = sample_table();
        let json = table.to_json_lines();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"name\":\"alpha\",\"value\":1}");
        assert_eq!(lines[1], "{\"name\":\"beta\",\"value\":23456}");
    }

    #[test]
    fn json_cells_are_typed_by_content() {
        let headers = ["a"];
        let case = |cell: &str| json_line(&headers, &[cell]);
        // Numbers pass through with their own formatting.
        assert_eq!(case("1000"), "{\"a\":1000}");
        assert_eq!(case("0.250"), "{\"a\":0.250}");
        assert_eq!(case("-3.5"), "{\"a\":-3.5}");
        assert_eq!(case("2.00e7"), "{\"a\":2.00e7}");
        assert_eq!(case("1e-3"), "{\"a\":1e-3}");
        // A leading '+' (the bias column's rendering) is stripped — "+0.5"
        // parses as a number but is not valid JSON number syntax.
        assert_eq!(case("+0.4058"), "{\"a\":0.4058}");
        // Rust-parseable but JSON-invalid spellings normalize via f64.
        assert_eq!(case("3."), "{\"a\":3}");
        assert_eq!(case(".5"), "{\"a\":0.5}");
        // Non-finite numeric cells map to null.
        assert_eq!(case("inf"), "{\"a\":null}");
        assert_eq!(case("-inf"), "{\"a\":null}");
        assert_eq!(case("NaN"), "{\"a\":null}");
        // Everything else stays a string.
        assert_eq!(case("-"), "{\"a\":\"-\"}");
        assert_eq!(case("true"), "{\"a\":\"true\"}");
        assert_eq!(case("3.27x"), "{\"a\":\"3.27x\"}");
        assert_eq!(case("stage 1"), "{\"a\":\"stage 1\"}");
        assert_eq!(
            case("5/5 = 1.000 [0.566, 1.000]"),
            "{\"a\":\"5/5 = 1.000 [0.566, 1.000]\"}"
        );
        assert_eq!(case(""), "{\"a\":\"\"}");
    }

    #[test]
    fn json_number_syntax_checker_matches_the_json_grammar() {
        for valid in ["0", "-0", "10", "3.5", "0.250", "1e5", "1E+5", "2.5e-3"] {
            assert!(is_json_number(valid), "{valid} is a JSON number");
        }
        for invalid in ["+1", "01", "3.", ".5", "1e", "1e+", "--1", "0x10", "", "1 "] {
            assert!(!is_json_number(invalid), "{invalid} is not a JSON number");
        }
    }

    #[test]
    fn json_lines_escape_special_characters() {
        let mut table = Table::new(vec!["a"]);
        table.push_row(vec!["quote\" back\\slash\nnewline\ttab".into()]);
        let json = table.to_json_lines();
        assert_eq!(
            json,
            "{\"a\":\"quote\\\" back\\\\slash\\nnewline\\ttab\"}\n"
        );
        // Numeric-looking *headers* stay strings — only values are typed.
        let mut table = Table::new(vec!["100"]);
        table.push_row(vec!["x".into()]);
        assert_eq!(table.to_json_lines(), "{\"100\":\"x\"}\n");
    }

    #[test]
    fn accessors() {
        let table = sample_table();
        assert_eq!(table.headers(), &["name".to_string(), "value".to_string()]);
        assert_eq!(table.num_rows(), 2);
        assert_eq!(table.rows()[1][0], "beta");
        assert_eq!(table.column_index("value"), Some(1));
        assert_eq!(table.column_index("missing"), None);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_length_panics() {
        let mut table = Table::new(vec!["only one"]);
        table.push_row(vec!["a".into(), "b".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(Vec::<String>::new());
    }
}
