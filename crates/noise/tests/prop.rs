//! Property-based tests for noise matrices and the majority-preservation
//! analysis.

use noisy_channel::{families, NoiseMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a random δ-biased distribution towards opinion `m`: start from the
/// maximally biased point (all mass on `m`) and move random amounts of mass
/// to competitors while keeping the bias constraint satisfied.
fn random_delta_biased(k: usize, m: usize, delta: f64, weights: &[f64]) -> Vec<f64> {
    // c_m = x, competitors share 1 - x, each at most x - delta.
    // Choose x in [max(1/k + delta*(k-1)/k, ...), 1].
    let min_cm = (1.0 + delta * (k as f64 - 1.0)) / k as f64;
    let w_x = weights[0].clamp(0.0, 1.0);
    let cm = min_cm + (1.0 - min_cm) * w_x;
    let rest = 1.0 - cm;
    // Distribute `rest` proportionally to the remaining weights, capping each
    // share at cm - delta.
    let mut c = vec![0.0; k];
    c[m] = cm;
    let comp: Vec<usize> = (0..k).filter(|&j| j != m).collect();
    let wsum: f64 = comp
        .iter()
        .enumerate()
        .map(|(t, _)| weights[1 + t].max(1e-9))
        .sum();
    let cap = (cm - delta).max(0.0);
    let mut leftover = rest;
    for (t, &j) in comp.iter().enumerate() {
        let share = rest * weights[1 + t].max(1e-9) / wsum;
        let assigned = share.min(cap);
        c[j] = assigned;
        leftover -= assigned;
    }
    // Any leftover (from capping) goes back to the plurality opinion.
    c[m] += leftover.max(0.0);
    c
}

fn weights_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, 9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every constructor of the `families` module produces a row-stochastic
    /// matrix, and applying it to a distribution yields a distribution.
    #[test]
    fn families_are_stochastic_and_preserve_the_simplex(
        k in 3usize..8,
        eps_scale in 0.05f64..0.95,
        seed in 0u64..1_000,
        weights in weights_strategy(),
    ) {
        let eps_uniform = eps_scale * (1.0 - 1.0 / k as f64);
        let matrices = vec![
            NoiseMatrix::uniform(k, eps_uniform).unwrap(),
            families::cyclic(k, 0.49 * eps_scale).unwrap(),
            families::reset_to_opinion(k, 0.9 * eps_scale, k - 1).unwrap(),
            families::random_stochastic(k, eps_scale, &mut StdRng::seed_from_u64(seed)).unwrap(),
            families::diagonally_dominant_counterexample(0.5 * eps_scale).unwrap(),
        ];
        for p in matrices {
            let kk = p.num_opinions();
            for row in p.iter_rows() {
                let sum: f64 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6);
                prop_assert!(row.iter().all(|&v| v >= -1e-9));
            }
            // Build an arbitrary distribution from the weights and apply.
            let mut c: Vec<f64> = (0..kk).map(|i| weights[i % weights.len()] + 1e-3).collect();
            let total: f64 = c.iter().sum();
            for v in &mut c {
                *v /= total;
            }
            let out = p.apply(&c);
            let out_sum: f64 = out.iter().sum();
            prop_assert!((out_sum - 1.0).abs() < 1e-9);
            prop_assert!(out.iter().all(|&v| v >= -1e-12));
        }
    }

    /// The LP-computed worst-case margin is a true lower bound: no randomly
    /// generated δ-biased distribution can achieve a smaller margin.
    #[test]
    fn mp_margin_lower_bounds_random_biased_distributions(
        k in 2usize..7,
        m_sel in 0usize..7,
        delta_scale in 0.01f64..0.9,
        seed in 0u64..1_000,
        weights in weights_strategy(),
    ) {
        let m = m_sel % k;
        let delta = delta_scale; // delta in (0, 0.9]
        let mut rng = StdRng::seed_from_u64(seed);
        let p = families::random_stochastic(k, 0.3, &mut rng).unwrap();
        let report = p.majority_preservation(m, delta).unwrap();
        let c = random_delta_biased(k, m, delta, &weights);
        // Sanity: c is delta-biased.
        for j in (0..k).filter(|&j| j != m) {
            prop_assert!(c[m] - c[j] >= delta - 1e-9, "c = {c:?}");
        }
        let out = p.apply(&c);
        for i in (0..k).filter(|&i| i != m) {
            let margin_at_c = out[m] - out[i];
            prop_assert!(
                report.worst_margin() <= margin_at_c + 1e-7,
                "LP margin {} exceeds margin {} at c = {c:?}",
                report.worst_margin(),
                margin_at_c
            );
        }
    }

    /// Sampling through the channel and averaging approximates `c · P`
    /// (law of large numbers sanity check on the sampler).
    #[test]
    fn sampling_approximates_apply(
        eps in 0.05f64..0.45,
        seed in 0u64..1_000,
    ) {
        let p = NoiseMatrix::uniform(3, eps).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let trials = 30_000;
        let mut counts = [0usize; 3];
        // Push opinion 0 through the channel many times.
        for _ in 0..trials {
            counts[p.sample(0, &mut rng)] += 1;
        }
        let expected = p.row(0);
        for j in 0..3 {
            let freq = counts[j] as f64 / trials as f64;
            prop_assert!((freq - expected[j]).abs() < 0.02,
                "frequency {freq} vs expected {} for eps {eps}", expected[j]);
        }
    }

    /// The uniform family is majority preserving for every plurality opinion,
    /// every δ and every admissible ε (Section 4 of the paper).
    #[test]
    fn uniform_family_is_always_majority_preserving(
        k in 2usize..8,
        eps_scale in 0.05f64..1.0,
        delta in 0.01f64..1.0,
        m_sel in 0usize..8,
    ) {
        let eps = eps_scale * (1.0 - 1.0 / k as f64);
        let m = m_sel % k;
        let p = NoiseMatrix::uniform(k, eps).unwrap();
        let report = p.majority_preservation(m, delta).unwrap();
        prop_assert!(report.preserves_majority());
        // The closed-form margin is (eps + eps/(k-1)) * delta.
        let expected = (eps + eps / (k as f64 - 1.0)) * delta;
        prop_assert!((report.worst_margin() - expected).abs() < 1e-6);
    }
}
