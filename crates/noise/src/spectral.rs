//! Spectral / mixing helpers for noise matrices.
//!
//! These utilities are not needed by the protocol itself but are useful when
//! *studying* noise channels: the stationary distribution of the channel
//! (where repeated noising drives the opinion distribution), the
//! total-variation distance between opinion distributions, and the
//! contraction coefficient (Dobrushin coefficient) of the matrix, which
//! upper-bounds how fast repeated transmissions erase the initial plurality.
//! The experiment harness uses them to explain *why* a channel fails the
//! (ε, δ)-m.p. test: a channel whose stationary distribution is far from
//! uniform (e.g. resetting noise) actively pulls the system towards a
//! specific opinion, while a doubly-stochastic channel merely flattens it.

use crate::matrix::NoiseMatrix;

/// Total-variation distance between two distributions over the same opinion
/// space: `½ Σ_i |a_i − b_i|`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distributions must have the same length");
    0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

impl NoiseMatrix {
    /// The stationary distribution of the channel: the fixed point of
    /// `c ↦ c · P`, computed by power iteration.
    ///
    /// For doubly-stochastic matrices (all families of the paper except the
    /// resetting one) this is the uniform distribution; for resetting noise
    /// it concentrates on the reset target. Repeatedly relaying an opinion
    /// through the channel converges to this distribution, which is why
    /// protocols must amplify the signal faster than the channel mixes.
    pub fn stationary_distribution(&self) -> Vec<f64> {
        let k = self.num_opinions();
        let mut current = vec![1.0 / k as f64; k];
        for _ in 0..10_000 {
            let next = self.apply(&current);
            let moved = total_variation(&current, &next);
            current = next;
            if moved < 1e-13 {
                break;
            }
        }
        current
    }

    /// The Dobrushin contraction coefficient of the channel:
    /// `max_{i,j} TV(P_{i,·}, P_{j,·})`.
    ///
    /// One application of the channel shrinks the total-variation distance
    /// between any two opinion distributions by at least this factor; a
    /// coefficient close to 0 means the channel is so noisy that a single
    /// hop almost erases the plurality signal, and the bias the protocol can
    /// exploit per round is proportionally small.
    pub fn dobrushin_coefficient(&self) -> f64 {
        let k = self.num_opinions();
        let mut worst: f64 = 0.0;
        for i in 0..k {
            for j in (i + 1)..k {
                worst = worst.max(total_variation(self.row(i), self.row(j)));
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn total_variation_basics() {
        assert_eq!(total_variation(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert!((total_variation(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((total_variation(&[0.7, 0.3], &[0.5, 0.5]) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn total_variation_rejects_mismatched_lengths() {
        let _ = total_variation(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn uniform_family_is_doubly_stochastic_with_uniform_stationary() {
        let p = NoiseMatrix::uniform(4, 0.2).unwrap();
        let pi = p.stationary_distribution();
        for &v in &pi {
            assert!((v - 0.25).abs() < 1e-9, "stationary {pi:?}");
        }
    }

    #[test]
    fn resetting_noise_concentrates_on_the_target() {
        let p = families::reset_to_opinion(3, 0.3, 1).unwrap();
        let pi = p.stationary_distribution();
        assert!(pi[1] > 0.99, "stationary {pi:?}");
    }

    #[test]
    fn stationary_distribution_is_a_fixed_point() {
        let p = families::cyclic(5, 0.2).unwrap();
        let pi = p.stationary_distribution();
        let mapped = p.apply(&pi);
        assert!(total_variation(&pi, &mapped) < 1e-9);
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dobrushin_coefficient_matches_known_values() {
        // Binary flip: rows (1/2+e, 1/2-e) and (1/2-e, 1/2+e) differ by 2e in TV.
        let p = NoiseMatrix::binary_flip(0.2).unwrap();
        assert!((p.dobrushin_coefficient() - 0.4).abs() < 1e-12);
        // Identity: completely distinguishable rows.
        let id = NoiseMatrix::identity(3).unwrap();
        assert!((id.dobrushin_coefficient() - 1.0).abs() < 1e-12);
        // Uniform k-ary: rows differ only in two coordinates by eps + eps/(k-1).
        let k = 4;
        let eps = 0.12;
        let u = NoiseMatrix::uniform(k, eps).unwrap();
        let expected = eps + eps / (k as f64 - 1.0);
        assert!((u.dobrushin_coefficient() - expected).abs() < 1e-12);
    }

    #[test]
    fn noisier_channels_have_smaller_coefficients() {
        let clean = NoiseMatrix::uniform(3, 0.3).unwrap();
        let noisy = NoiseMatrix::uniform(3, 0.05).unwrap();
        assert!(noisy.dobrushin_coefficient() < clean.dobrushin_coefficient());
    }
}
