//! The validated row-stochastic noise matrix.

use crate::error::NoiseError;
use crate::{sampling, STOCHASTIC_TOLERANCE};
use rand::Rng;

/// A Walker/Vose alias table for one matrix row: O(1) sampling of the
/// received opinion, regardless of `k`.
///
/// Construction is the standard two-stack pairing of under-full and
/// over-full columns; sampling draws one uniform column index and one
/// uniform coin. Compared to the previous inverse-CDF binary search this
/// removes the `log k` factor *and* the data-dependent branch pattern from
/// the per-message hot path.
#[derive(Debug, Clone, PartialEq)]
struct AliasTable {
    /// Acceptance probability of each column.
    prob: Vec<f64>,
    /// Fallback outcome of each column.
    alias: Vec<usize>,
}

impl AliasTable {
    fn new(weights: &[f64]) -> Self {
        let k = weights.len();
        debug_assert!(k > 0);
        let total: f64 = weights.iter().sum();
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * k as f64 / total).collect();
        let mut prob = vec![0.0f64; k];
        let mut alias: Vec<usize> = (0..k).collect();
        let mut small: Vec<usize> = Vec::with_capacity(k);
        let mut large: Vec<usize> = Vec::with_capacity(k);
        for (j, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(j);
            } else {
                large.push(j);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] -= 1.0 - scaled[s];
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers on either stack are exactly-full columns up to rounding.
        for j in small.into_iter().chain(large) {
            prob[j] = 1.0;
        }
        Self { prob, alias }
    }

    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let j = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[j] {
            j
        } else {
            self.alias[j]
        }
    }
}

/// A `k × k` row-stochastic noise matrix `P = (p_{i,j})`.
///
/// Entry `p_{i,j}` is the probability that an opinion `i` pushed over a link
/// is received as opinion `j` (Section 2.1 of the paper). Rows are validated
/// to be non-negative and to sum to one (within
/// [`STOCHASTIC_TOLERANCE`](crate::STOCHASTIC_TOLERANCE)) at construction,
/// and a Walker/Vose alias table is precomputed per row so that sampling a
/// noisy output ([`sample`](NoiseMatrix::sample)) is O(1), and re-coloring a
/// whole batch of identical messages
/// ([`sample_row_counts`](NoiseMatrix::sample_row_counts)) is one
/// multinomial draw — O(k) — independent of the batch size.
///
/// # Example
///
/// ```
/// use noisy_channel::NoiseMatrix;
///
/// # fn main() -> Result<(), noisy_channel::NoiseError> {
/// // The binary noise matrix of Eq. (1) with eps = 0.2.
/// let p = NoiseMatrix::binary_flip(0.2)?;
/// assert_eq!(p.num_opinions(), 2);
/// assert!((p.entry(0, 0) - 0.7).abs() < 1e-12);
///
/// // Applying it to a distribution computes c · P.
/// let out = p.apply(&[1.0, 0.0]);
/// assert!((out[0] - 0.7).abs() < 1e-12);
/// assert!((out[1] - 0.3).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NoiseMatrix {
    /// Row-major entries.
    rows: Vec<Vec<f64>>,
    /// Per-row alias tables for O(1) sampling.
    #[cfg_attr(feature = "serde", serde(skip))]
    alias: Vec<AliasTable>,
}

impl NoiseMatrix {
    /// Builds a noise matrix from explicit rows.
    ///
    /// # Errors
    ///
    /// * [`NoiseError::TooFewOpinions`] if fewer than 2 rows are supplied.
    /// * [`NoiseError::NotSquare`] if any row has a different length than the
    ///   number of rows.
    /// * [`NoiseError::NonFiniteEntry`] if any entry is NaN or infinite.
    /// * [`NoiseError::NotStochastic`] if any entry is negative or a row does
    ///   not sum to 1.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, NoiseError> {
        let k = rows.len();
        if k < 2 {
            return Err(NoiseError::TooFewOpinions { found: k });
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != k {
                return Err(NoiseError::NotSquare {
                    rows: k,
                    row_len: row.len(),
                });
            }
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(NoiseError::NonFiniteEntry { row: i, col: j });
                }
                if v < -STOCHASTIC_TOLERANCE {
                    return Err(NoiseError::NotStochastic {
                        row: i,
                        sum: row.iter().sum(),
                    });
                }
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-6 {
                return Err(NoiseError::NotStochastic { row: i, sum });
            }
        }
        let alias = rows.iter().map(|row| AliasTable::new(row)).collect();
        Ok(Self { rows, alias })
    }

    /// The identity (noise-free) matrix over `k` opinions.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::TooFewOpinions`] if `k < 2`.
    pub fn identity(k: usize) -> Result<Self, NoiseError> {
        if k < 2 {
            return Err(NoiseError::TooFewOpinions { found: k });
        }
        let rows = (0..k)
            .map(|i| (0..k).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
            .collect();
        Self::from_rows(rows)
    }

    /// The binary noise matrix of Eq. (1): an opinion is kept with
    /// probability `1/2 + ε` and flipped with probability `1/2 − ε`.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::InvalidEpsilon`] unless `0 < ε ≤ 1/2`.
    pub fn binary_flip(epsilon: f64) -> Result<Self, NoiseError> {
        crate::families::binary_flip(epsilon)
    }

    /// The paper's uniform k-ary generalization of Eq. (1): the diagonal is
    /// `1/k + ε` and every off-diagonal entry is `1/k − ε/(k−1)`.
    ///
    /// # Errors
    ///
    /// Returns [`NoiseError::InvalidEpsilon`] unless `0 < ε ≤ 1 − 1/k`, and
    /// [`NoiseError::TooFewOpinions`] if `k < 2`.
    pub fn uniform(k: usize, epsilon: f64) -> Result<Self, NoiseError> {
        crate::families::uniform(k, epsilon)
    }

    /// The number of opinions `k` the matrix is defined over.
    pub fn num_opinions(&self) -> usize {
        self.rows.len()
    }

    /// The entry `p_{i,j}`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn entry(&self, i: usize, j: usize) -> f64 {
        self.rows[i][j]
    }

    /// The `i`-th row of the matrix (the output distribution of input `i`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// Iterates over the rows of the matrix.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// Applies the matrix to an opinion distribution: returns `c · P`.
    ///
    /// This is Eq. (2) of the paper: if the opinion distribution at round `t`
    /// is `c`, the expected distribution of *received* opinions is `c · P`.
    ///
    /// # Panics
    ///
    /// Panics if `distribution.len()` differs from the number of opinions.
    pub fn apply(&self, distribution: &[f64]) -> Vec<f64> {
        assert_eq!(
            distribution.len(),
            self.num_opinions(),
            "distribution dimension must equal the number of opinions"
        );
        let k = self.num_opinions();
        let mut out = vec![0.0; k];
        for (ci, row) in distribution.iter().zip(&self.rows) {
            if *ci == 0.0 {
                continue;
            }
            for (o, pij) in out.iter_mut().zip(row) {
                *o += ci * pij;
            }
        }
        out
    }

    /// Samples the received opinion when opinion `input` is pushed through
    /// the noisy channel. O(1) via the precomputed alias table.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, input: usize, rng: &mut R) -> usize {
        self.alias[input].sample(rng)
    }

    /// Re-colors `count` identical copies of opinion `input` through the
    /// channel in one batch: returns per-opinion received counts drawn from
    /// `Multinomial(count, p_input)`, summing to exactly `count`.
    ///
    /// This is the count-level view used by the batched delivery engine:
    /// messages within a phase are exchangeable, so one multinomial draw per
    /// opinion row — O(k) conditional binomials — replaces `count`
    /// per-message channel samples.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range.
    pub fn sample_row_counts<R: Rng + ?Sized>(
        &self,
        input: usize,
        count: u64,
        rng: &mut R,
    ) -> Vec<u64> {
        sampling::multinomial(count, &self.rows[input], rng)
    }

    /// Re-colors a whole phase's pending per-opinion counts through the
    /// channel: the sum of one [`sample_row_counts`](Self::sample_row_counts)
    /// draw per opinion row — O(k²) conditional binomials total, conserving
    /// the message count exactly. This is the shared noise-application step
    /// of both simulator backends' batched `end_phase`.
    ///
    /// # Panics
    ///
    /// Panics if `pending.len() ≠ num_opinions()`.
    pub fn recolor_counts<R: Rng + ?Sized>(&self, pending: &[u64], rng: &mut R) -> Vec<u64> {
        assert_eq!(
            pending.len(),
            self.num_opinions(),
            "pending counts must have one entry per opinion"
        );
        let mut post_noise = vec![0u64; self.num_opinions()];
        for (opinion, &m) in pending.iter().enumerate() {
            if m == 0 {
                continue;
            }
            for (total, c) in post_noise
                .iter_mut()
                .zip(self.sample_row_counts(opinion, m, rng))
            {
                *total += c;
            }
        }
        post_noise
    }

    /// Returns `true` if the matrix is the identity (no noise).
    pub fn is_identity(&self) -> bool {
        self.rows.iter().enumerate().all(|(i, row)| {
            row.iter()
                .enumerate()
                .all(|(j, &v)| (v - if i == j { 1.0 } else { 0.0 }).abs() < STOCHASTIC_TOLERANCE)
        })
    }

    /// Returns `true` if the matrix is doubly stochastic (columns also sum
    /// to one). All matrices of the paper's uniform family are doubly
    /// stochastic; the resetting family is not.
    pub fn is_doubly_stochastic(&self) -> bool {
        let k = self.num_opinions();
        (0..k).all(|j| {
            let col_sum: f64 = self.rows.iter().map(|r| r[j]).sum();
            (col_sum - 1.0).abs() < 1e-6
        })
    }

    /// Returns `true` if every diagonal entry strictly dominates every other
    /// entry of its row. Diagonal dominance is *not* sufficient for majority
    /// preservation (Section 4 of the paper exhibits a counterexample).
    pub fn is_diagonally_dominant(&self) -> bool {
        self.rows.iter().enumerate().all(|(i, row)| {
            row.iter()
                .enumerate()
                .all(|(j, &v)| i == j || row[i] > v + STOCHASTIC_TOLERANCE)
        })
    }

    /// The minimum diagonal entry of the matrix: the worst-case probability
    /// that an opinion survives the channel unchanged.
    pub fn min_survival_probability(&self) -> f64 {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, row)| row[i])
            .fold(f64::INFINITY, f64::min)
    }

    /// Consumes the matrix and returns its rows.
    pub fn into_rows(self) -> Vec<Vec<f64>> {
        self.rows
    }
}

impl std::fmt::Display for NoiseMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "NoiseMatrix ({}x{}):", self.num_opinions(), self.num_opinions())?;
        for row in &self.rows {
            write!(f, "  [")?;
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.4}")?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_rows_validates_shape_and_stochasticity() {
        assert!(matches!(
            NoiseMatrix::from_rows(vec![vec![1.0]]),
            Err(NoiseError::TooFewOpinions { found: 1 })
        ));
        assert!(matches!(
            NoiseMatrix::from_rows(vec![vec![1.0, 0.0], vec![1.0]]),
            Err(NoiseError::NotSquare { .. })
        ));
        assert!(matches!(
            NoiseMatrix::from_rows(vec![vec![0.6, 0.6], vec![0.5, 0.5]]),
            Err(NoiseError::NotStochastic { row: 0, .. })
        ));
        assert!(matches!(
            NoiseMatrix::from_rows(vec![vec![f64::NAN, 1.0], vec![0.5, 0.5]]),
            Err(NoiseError::NonFiniteEntry { row: 0, col: 0 })
        ));
        assert!(matches!(
            NoiseMatrix::from_rows(vec![vec![1.2, -0.2], vec![0.5, 0.5]]),
            Err(NoiseError::NotStochastic { .. })
        ));
    }

    #[test]
    fn identity_is_identity() {
        let p = NoiseMatrix::identity(3).unwrap();
        assert!(p.is_identity());
        assert!(p.is_doubly_stochastic());
        assert!(p.is_diagonally_dominant());
        assert_eq!(p.min_survival_probability(), 1.0);
        assert_eq!(p.apply(&[0.2, 0.3, 0.5]), vec![0.2, 0.3, 0.5]);
    }

    #[test]
    fn apply_matches_manual_matrix_vector_product() {
        let p = NoiseMatrix::from_rows(vec![
            vec![0.7, 0.2, 0.1],
            vec![0.1, 0.8, 0.1],
            vec![0.3, 0.3, 0.4],
        ])
        .unwrap();
        let c = [0.5, 0.25, 0.25];
        let out = p.apply(&c);
        let expected = [
            0.5 * 0.7 + 0.25 * 0.1 + 0.25 * 0.3,
            0.5 * 0.2 + 0.25 * 0.8 + 0.25 * 0.3,
            0.5 * 0.1 + 0.25 * 0.1 + 0.25 * 0.4,
        ];
        for (o, e) in out.iter().zip(&expected) {
            assert!((o - e).abs() < 1e-12);
        }
        // A distribution stays a distribution.
        let sum: f64 = out.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_frequencies_match_the_row() {
        let p = NoiseMatrix::from_rows(vec![
            vec![0.6, 0.3, 0.1],
            vec![0.1, 0.1, 0.8],
            vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 200_000;
        for input in 0..3 {
            let mut counts = [0usize; 3];
            for _ in 0..trials {
                counts[p.sample(input, &mut rng)] += 1;
            }
            for (j, &count) in counts.iter().enumerate() {
                let freq = count as f64 / trials as f64;
                assert!(
                    (freq - p.entry(input, j)).abs() < 0.01,
                    "input {input}: frequency of {j} was {freq}, expected {}",
                    p.entry(input, j)
                );
            }
        }
    }

    #[test]
    fn sample_never_returns_out_of_range() {
        let p = NoiseMatrix::binary_flip(0.5).unwrap(); // deterministic channel
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(p.sample(0, &mut rng), 0);
            assert_eq!(p.sample(1, &mut rng), 1);
        }
    }

    #[test]
    fn structural_predicates() {
        let uniform = NoiseMatrix::uniform(4, 0.1).unwrap();
        assert!(uniform.is_doubly_stochastic());
        assert!(uniform.is_diagonally_dominant());
        assert!(!uniform.is_identity());
        assert!((uniform.min_survival_probability() - (0.25 + 0.1)).abs() < 1e-12);

        let reset = crate::families::reset_to_opinion(3, 0.3, 0).unwrap();
        assert!(!reset.is_doubly_stochastic());
    }

    #[test]
    fn display_contains_all_entries() {
        let p = NoiseMatrix::binary_flip(0.25).unwrap();
        let text = p.to_string();
        assert!(text.contains("0.7500"));
        assert!(text.contains("0.2500"));
    }

    #[test]
    fn sample_row_counts_conserves_and_matches_the_row() {
        let p = NoiseMatrix::from_rows(vec![
            vec![0.6, 0.3, 0.1],
            vec![0.1, 0.1, 0.8],
            vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        for input in 0..3 {
            let count = 200_000u64;
            let out = p.sample_row_counts(input, count, &mut rng);
            assert_eq!(out.iter().sum::<u64>(), count, "conservation violated");
            for (j, &c) in out.iter().enumerate() {
                let freq = c as f64 / count as f64;
                assert!(
                    (freq - p.entry(input, j)).abs() < 0.005,
                    "input {input}: frequency of {j} was {freq}, expected {}",
                    p.entry(input, j)
                );
            }
        }
        // Zero messages, zero output.
        assert_eq!(p.sample_row_counts(0, 0, &mut rng), vec![0, 0, 0]);
    }

    #[test]
    fn alias_table_handles_deterministic_rows() {
        // Rows with zero entries must never emit the zero-probability
        // outcome (identity matrix: alias fallbacks all point back at the
        // diagonal).
        let p = NoiseMatrix::identity(4).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for input in 0..4 {
            for _ in 0..1_000 {
                assert_eq!(p.sample(input, &mut rng), input);
            }
            let counts = p.sample_row_counts(input, 1_000, &mut rng);
            assert_eq!(counts[input], 1_000);
        }
    }

    #[test]
    fn into_rows_round_trips() {
        let rows = vec![vec![0.9, 0.1], vec![0.2, 0.8]];
        let p = NoiseMatrix::from_rows(rows.clone()).unwrap();
        assert_eq!(p.into_rows(), rows);
    }
}
