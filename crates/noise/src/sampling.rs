//! Batched count-based sampling primitives: exact binomial and multinomial
//! draws.
//!
//! The paper's processes B and P (Definitions 3 and 4) act on *counts* of
//! exchangeable messages, not on individual messages: re-coloring `m`
//! pending copies of opinion `i` through row `p_i` of the noise matrix is
//! one draw from `Multinomial(m, p_i)`. This module provides the exact
//! samplers that make that reformulation O(k²) random draws per phase
//! instead of O(messages):
//!
//! * [`binomial`] — exact `Binomial(n, p)`: BINV inversion for small
//!   `n·p`, Hörmann's BTRS transformed-rejection algorithm (1993) for
//!   large `n·p`. Both are exact samplers (BTRS is a rejection method, not
//!   an approximation), so the batched delivery paths are distributionally
//!   identical to per-message sampling — the property the
//!   `tests/equivalence.rs` suite in `pushsim` checks empirically.
//! * [`multinomial`] — decomposes `Multinomial(n, p)` into `k` conditional
//!   binomials; the result always sums to exactly `n` (conservation of
//!   messages by construction).

use rand::Rng;

/// Natural log of the Gamma function, via the Lanczos approximation
/// (g = 7, n = 9); absolute error below 1e-13 over the positive reals.
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    if x < 0.5 {
        // Reflection formula keeps the series in its accurate range.
        return std::f64::consts::PI.ln() - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The Stirling-series tail `ln(k!) − [ (k+½)ln(k+1) − (k+1) + ½ln(2π) ]`
/// used by BTRS's acceptance bound (exact table for `k ≤ 9`).
fn stirling_tail(k: u64) -> f64 {
    const TABLE: [f64; 10] = [
        0.081_061_466_795_327_2,
        0.041_340_695_955_409_2,
        0.027_677_925_684_998_3,
        0.020_790_672_103_765_1,
        0.016_644_691_189_821_1,
        0.013_876_128_823_070_7,
        0.011_896_709_945_891_7,
        0.010_411_265_261_972_0,
        0.009_255_462_182_712_73,
        0.008_330_563_433_362_87,
    ];
    if k < 10 {
        return TABLE[k as usize];
    }
    // In f64: k + 1 can exceed 2^32, whose square overflows u64 (seen at
    // the message volumes of the n = 10^7+ counting-backend runs).
    let kp1 = (k + 1) as f64;
    let kp1sq = kp1 * kp1;
    (1.0 / 12.0 - (1.0 / 360.0 - 1.0 / 1260.0 / kp1sq) / kp1sq) / kp1
}

/// BINV: sequential CDF inversion, exact, O(n·p) expected iterations.
/// Requires `p ≤ 0.5` and moderate `n·p` (so `(1−p)^n` does not underflow).
fn binomial_binv<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let a = (n as f64 + 1.0) * s;
    let mut r = q.powf(n as f64);
    let mut u: f64 = rng.gen();
    let mut x = 0u64;
    while u > r {
        u -= r;
        x += 1;
        if x > n {
            // Floating-point leakage past the support; retry the draw.
            r = q.powf(n as f64);
            u = rng.gen();
            x = 0;
            continue;
        }
        r *= a / x as f64 - s;
    }
    x
}

/// BTRS (Hörmann 1993): transformed rejection with squeeze. Exact, O(1)
/// expected draws. Requires `p ≤ 0.5` and `n·p ≥ 10`.
fn binomial_btrs<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let nf = n as f64;
    let q = 1.0 - p;
    let spq = (nf * p * q).sqrt();
    let b = 1.15 + 2.53 * spq;
    let a = -0.0873 + 0.0248 * b + 0.01 * p;
    let c = nf * p + 0.5;
    let v_r = 0.92 - 4.2 / b;
    let r = p / q;
    let alpha = (2.83 + 5.1 / b) * spq;
    let m = ((nf + 1.0) * p).floor();
    loop {
        let u: f64 = rng.gen::<f64>() - 0.5;
        let mut v: f64 = rng.gen();
        let us = 0.5 - u.abs();
        let kf = ((2.0 * a / us + b) * u + c).floor();
        if kf < 0.0 || kf > nf {
            continue;
        }
        // Squeeze: accept the bulk without evaluating logarithms.
        if us >= 0.07 && v <= v_r {
            return kf as u64;
        }
        let k = kf as u64;
        v = (v * alpha / (a / (us * us) + b)).ln();
        let upper = (m + 0.5) * ((m + 1.0) / (r * (nf - m + 1.0))).ln()
            + (nf + 1.0) * ((nf - m + 1.0) / (nf - kf + 1.0)).ln()
            + (kf + 0.5) * (r * (nf - kf + 1.0) / (kf + 1.0)).ln()
            + stirling_tail(m as u64)
            + stirling_tail(n - m as u64)
            - stirling_tail(k)
            - stirling_tail(n - k);
        if v <= upper {
            return k;
        }
    }
}

/// An exact draw from `Binomial(n, p)`.
///
/// Dispatch: trivial edges, then BINV for `n·min(p,q) < 10`, BTRS
/// otherwise. Every path is an exact sampler.
///
/// # Panics
///
/// Panics if `p` is NaN or outside `[0, 1]` by more than a rounding slack.
pub fn binomial<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    assert!(
        (-1e-9..=1.0 + 1e-9).contains(&p),
        "binomial probability must be in [0, 1], got {p}"
    );
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if p > 0.5 {
        return n - binomial(n, 1.0 - p, rng);
    }
    if n as f64 * p < 10.0 {
        binomial_binv(n, p, rng)
    } else {
        binomial_btrs(n, p, rng)
    }
}

/// An exact draw from `Multinomial(n, probs)` by conditional binomial
/// decomposition. The returned counts always sum to exactly `n`.
///
/// `probs` need not be normalized; only the ratios matter. Runs in `O(k)`
/// binomial draws.
///
/// # Panics
///
/// Panics if `probs` is empty, contains a negative or non-finite weight, or
/// sums to zero while `n > 0`.
pub fn multinomial<R: Rng + ?Sized>(n: u64, probs: &[f64], rng: &mut R) -> Vec<u64> {
    assert!(!probs.is_empty(), "multinomial needs at least one category");
    let mut remaining_mass: f64 = probs
        .iter()
        .map(|&p| {
            assert!(p.is_finite() && p >= 0.0, "invalid multinomial weight {p}");
            p
        })
        .sum();
    assert!(
        n == 0 || remaining_mass > 0.0,
        "multinomial weights must not all be zero"
    );
    let mut counts = vec![0u64; probs.len()];
    let mut remaining = n;
    for (j, &pj) in probs.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        if j + 1 == probs.len() {
            counts[j] = remaining;
            break;
        }
        let conditional = (pj / remaining_mass).clamp(0.0, 1.0);
        let draw = binomial(remaining, conditional, rng);
        counts[j] = draw;
        remaining -= draw;
        remaining_mass = (remaining_mass - pj).max(0.0);
        if remaining_mass == 0.0 {
            // All residual mass was consumed (within rounding); any
            // remaining trials stay at categories already handled, which
            // can only happen through rounding on degenerate inputs.
            break;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ln_factorial(k: u64) -> f64 {
        ln_gamma(k as f64 + 1.0)
    }

    /// Exact Binomial(n, p) pmf via log-gamma.
    fn binom_pmf(n: u64, p: f64, k: u64) -> f64 {
        let (nf, kf) = (n as f64, k as f64);
        (ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
            + kf * p.ln()
            + (nf - kf) * (1.0 - p).ln())
        .exp()
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-11);
        // Recurrence Γ(x+1) = xΓ(x) across the BTRS-relevant range.
        for &x in &[0.7, 3.3, 12.5, 100.0, 1e4] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-9, "x = {x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(binomial(0, 0.5, &mut rng), 0);
        assert_eq!(binomial(100, 0.0, &mut rng), 0);
        assert_eq!(binomial(100, 1.0, &mut rng), 100);
        for _ in 0..100 {
            let x = binomial(10, 0.5, &mut rng);
            assert!(x <= 10);
        }
    }

    /// Chi-square goodness of fit against the exact pmf, exercising both
    /// the BINV path (np < 10) and the BTRS path (np ≥ 10).
    #[test]
    fn binomial_matches_exact_pmf() {
        for &(n, p, seed) in &[
            (20u64, 0.2f64, 11u64),  // BINV
            (50, 0.3, 12),           // BTRS (np = 15)
            (400, 0.5, 13),          // BTRS, symmetric
            (1000, 0.85, 14),        // complement + BTRS
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let trials = 200_000usize;
            let mut counts = vec![0u64; n as usize + 1];
            for _ in 0..trials {
                counts[binomial(n, p, &mut rng) as usize] += 1;
            }
            // Pool bins with expected count < 5 into their neighbours.
            let mut chi2 = 0.0;
            let mut dof = 0i64;
            let mut pooled_obs = 0.0;
            let mut pooled_exp = 0.0;
            for k in 0..=n {
                let e = binom_pmf(n, p, k) * trials as f64;
                pooled_obs += counts[k as usize] as f64;
                pooled_exp += e;
                if pooled_exp >= 5.0 {
                    chi2 += (pooled_obs - pooled_exp).powi(2) / pooled_exp;
                    dof += 1;
                    pooled_obs = 0.0;
                    pooled_exp = 0.0;
                }
            }
            dof -= 1;
            // For the dof at play (tens of bins) the 99.9th percentile of
            // chi-square is below dof + 4·sqrt(2·dof) + 10; deterministic
            // seeds make this a regression test, not a flaky one.
            let budget = dof as f64 + 4.0 * (2.0 * dof as f64).sqrt() + 10.0;
            assert!(
                chi2 < budget,
                "n={n} p={p}: chi2 {chi2:.1} over budget {budget:.1} (dof {dof})"
            );
        }
    }

    #[test]
    fn binomial_moments_are_right_at_large_n() {
        let (n, p) = (1_000_000u64, 0.37);
        let mut rng = StdRng::seed_from_u64(21);
        let trials = 2_000;
        let samples: Vec<f64> = (0..trials)
            .map(|_| binomial(n, p, &mut rng) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / trials as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / trials as f64;
        let (em, ev) = (n as f64 * p, n as f64 * p * (1.0 - p));
        assert!((mean - em).abs() / em < 1e-3, "mean {mean} vs {em}");
        assert!((var - ev).abs() / ev < 0.1, "var {var} vs {ev}");
    }

    #[test]
    fn multinomial_conserves_and_matches_proportions() {
        let mut rng = StdRng::seed_from_u64(31);
        let probs = [0.5, 0.2, 0.2, 0.1];
        let n = 100_000u64;
        let mut totals = [0u64; 4];
        let reps = 50;
        for _ in 0..reps {
            let draw = multinomial(n, &probs, &mut rng);
            assert_eq!(draw.iter().sum::<u64>(), n, "conservation violated");
            for (t, d) in totals.iter_mut().zip(&draw) {
                *t += d;
            }
        }
        for (j, &pj) in probs.iter().enumerate() {
            let freq = totals[j] as f64 / (n * reps) as f64;
            assert!((freq - pj).abs() < 2e-3, "category {j}: {freq} vs {pj}");
        }
    }

    #[test]
    fn multinomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(41);
        assert_eq!(multinomial(0, &[1.0, 1.0], &mut rng), vec![0, 0]);
        assert_eq!(multinomial(7, &[0.0, 1.0, 0.0], &mut rng), vec![0, 7, 0]);
        let d = multinomial(5, &[0.0, 0.0, 3.0], &mut rng);
        assert_eq!(d, vec![0, 0, 5]);
        // Unnormalized weights behave like their normalization.
        let d = multinomial(10_000, &[2.0, 2.0], &mut rng);
        assert_eq!(d.iter().sum::<u64>(), 10_000);
        assert!((d[0] as f64 - 5_000.0).abs() < 500.0);
    }
}
