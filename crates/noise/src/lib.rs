//! # noisy-channel
//!
//! Noise matrices over `k` opinions for the **noisy uniform push model** of
//! Fraigniaud & Natale, *Noisy Rumor Spreading and Plurality Consensus*
//! (PODC 2016).
//!
//! In that model, every opinion `i ∈ {0, …, k−1}` transmitted over a link is
//! received as opinion `j` with probability `p_{i,j}`, where
//! `P = (p_{i,j})` is a row-stochastic **noise matrix**. The paper's central
//! structural definition is the *(ε, δ)-majority-preserving* property
//! (Definition 2): `P` is (ε, δ)-m.p. with respect to opinion `m` if for
//! every opinion distribution `c` that is δ-biased towards `m`,
//!
//! ```text
//! (c · P)_m − (c · P)_i  >  ε δ      for all i ≠ m.
//! ```
//!
//! This crate provides:
//!
//! * [`NoiseMatrix`] — a validated row-stochastic matrix with fast sampling
//!   of noisy outputs and distribution-level application `c ↦ c · P`;
//! * [`families`] — the standard matrix families discussed in the paper
//!   (the binary ε-flip of Eq. (1), its uniform k-ary generalization, the
//!   diagonally-dominant counterexample of Section 4, cyclic and resetting
//!   noise, near-uniform bands of Eq. (17), …);
//! * [`mp`] — the LP-based (ε, δ)-majority-preserving membership test of
//!   Section 4, together with the closed-form sufficient condition of
//!   Eq. (18);
//! * [`sampling`] — exact binomial/multinomial samplers powering the
//!   simulator's batched count-based delivery (one multinomial per opinion
//!   row instead of one channel draw per message);
//! * [`NoiseSpec`] — a declarative, `k`-independent family-plus-parameters
//!   description with a round-trippable textual form (`uniform(0.25)`,
//!   `reset(0.4, 1)`, …), used by the experiment harness's scenario spec
//!   files.
//!
//! # Example
//!
//! ```
//! use noisy_channel::{families, NoiseMatrix};
//!
//! # fn main() -> Result<(), noisy_channel::NoiseError> {
//! // The paper's uniform k-ary noise: 1/k + eps on the diagonal.
//! let p = NoiseMatrix::uniform(4, 0.1)?;
//! assert_eq!(p.num_opinions(), 4);
//!
//! // It preserves any delta-biased plurality (Section 4).
//! let report = p.majority_preservation(0, 0.05)?;
//! assert!(report.is_majority_preserving(0.05));
//!
//! // The diagonally-dominant counterexample does not.
//! let bad = families::diagonally_dominant_counterexample(0.1)?;
//! let report = bad.majority_preservation(0, 0.1)?;
//! assert!(!report.preserves_majority());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod families;
mod matrix;
pub mod mp;
pub mod sampling;
mod spec;
pub mod spectral;

pub use error::NoiseError;
pub use matrix::NoiseMatrix;
pub use spec::NoiseSpec;
pub use mp::{MpReport, PairwiseMargin};
pub use spectral::total_variation;

/// Numerical tolerance for stochasticity checks and margin comparisons.
pub const STOCHASTIC_TOLERANCE: f64 = 1e-9;
