//! Error type for noise-matrix construction and analysis.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or analysing a
/// [`NoiseMatrix`](crate::NoiseMatrix).
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseError {
    /// The matrix must have at least two opinions.
    TooFewOpinions {
        /// The number of opinions requested.
        found: usize,
    },
    /// The rows do not form a square `k × k` matrix.
    NotSquare {
        /// Number of rows supplied.
        rows: usize,
        /// Length of the offending row.
        row_len: usize,
    },
    /// A row does not sum to one (within tolerance) or has negative entries.
    NotStochastic {
        /// Index of the offending row.
        row: usize,
        /// The sum of the offending row.
        sum: f64,
    },
    /// An entry is NaN or infinite.
    NonFiniteEntry {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
    /// An `ε` parameter is outside its valid range for the requested family.
    InvalidEpsilon {
        /// The offending value.
        value: f64,
        /// Largest admissible value for the family.
        max: f64,
    },
    /// A `δ` bias parameter is outside `(0, 1]`.
    InvalidDelta {
        /// The offending value.
        value: f64,
    },
    /// An opinion index is out of range for the matrix.
    OpinionOutOfRange {
        /// The offending opinion index.
        opinion: usize,
        /// The number of opinions of the matrix.
        num_opinions: usize,
    },
    /// The underlying linear program could not be solved (should not occur
    /// for valid inputs; indicates a bug or severe numerical trouble).
    LpFailure(String),
    /// A textual [`NoiseSpec`](crate::NoiseSpec) could not be parsed, or a
    /// fixed-size family was requested at an incompatible opinion count.
    InvalidSpec(String),
}

impl fmt::Display for NoiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseError::TooFewOpinions { found } => {
                write!(f, "noise matrix needs at least 2 opinions, got {found}")
            }
            NoiseError::NotSquare { rows, row_len } => write!(
                f,
                "noise matrix must be square: {rows} rows but a row of length {row_len}"
            ),
            NoiseError::NotStochastic { row, sum } => write!(
                f,
                "row {row} of the noise matrix is not stochastic (sum = {sum})"
            ),
            NoiseError::NonFiniteEntry { row, col } => {
                write!(f, "entry ({row}, {col}) of the noise matrix is not finite")
            }
            NoiseError::InvalidEpsilon { value, max } => write!(
                f,
                "epsilon {value} is outside the admissible range (0, {max}] for this family"
            ),
            NoiseError::InvalidDelta { value } => {
                write!(f, "delta {value} must lie in (0, 1]")
            }
            NoiseError::OpinionOutOfRange {
                opinion,
                num_opinions,
            } => write!(
                f,
                "opinion {opinion} is out of range for a matrix over {num_opinions} opinions"
            ),
            NoiseError::LpFailure(msg) => write!(f, "majority-preservation LP failed: {msg}"),
            NoiseError::InvalidSpec(msg) => write!(f, "invalid noise spec: {msg}"),
        }
    }
}

impl Error for NoiseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(NoiseError, &str)> = vec![
            (NoiseError::TooFewOpinions { found: 1 }, "at least 2"),
            (
                NoiseError::NotSquare {
                    rows: 3,
                    row_len: 2,
                },
                "square",
            ),
            (
                NoiseError::NotStochastic { row: 0, sum: 0.9 },
                "stochastic",
            ),
            (NoiseError::NonFiniteEntry { row: 1, col: 2 }, "finite"),
            (
                NoiseError::InvalidEpsilon {
                    value: 2.0,
                    max: 0.5,
                },
                "epsilon",
            ),
            (NoiseError::InvalidDelta { value: -0.2 }, "delta"),
            (
                NoiseError::OpinionOutOfRange {
                    opinion: 5,
                    num_opinions: 3,
                },
                "out of range",
            ),
            (NoiseError::LpFailure("x".into()), "LP"),
            (NoiseError::InvalidSpec("y".into()), "spec"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<NoiseError>();
    }
}
