//! Standard noise-matrix families discussed in the paper.
//!
//! Section 2 and Section 4 of Fraigniaud & Natale (PODC 2016) introduce, as
//! examples and counterexamples, several ways an opinion `i` can be switched
//! to another opinion `i′` by the channel:
//!
//! * flipped to the complement (the binary matrix of Eq. (1));
//! * switched uniformly at random to any other opinion (the k-ary
//!   generalization, shown m.p. for every δ);
//! * switched to a "close" opinion `i ± 1 (mod k)` (cyclic noise);
//! * "reset" to a fixed opinion (resetting noise);
//! * an arbitrary near-uniform band `p` on the diagonal, off-diagonal
//!   entries in `[q_l, q_u]` (Eq. (17), with the sufficient condition of
//!   Eq. (18));
//! * the diagonally-dominant counterexample of Section 4, which fails to
//!   preserve even a strict majority when `ε, δ < 1/6`.
//!
//! All constructors validate their parameters and return a fully checked
//! [`NoiseMatrix`].

use crate::error::NoiseError;
use crate::matrix::NoiseMatrix;
use rand::Rng;

/// The binary noise matrix of Eq. (1):
/// `[[1/2 + ε, 1/2 − ε], [1/2 − ε, 1/2 + ε]]`.
///
/// # Errors
///
/// Returns [`NoiseError::InvalidEpsilon`] unless `0 < ε ≤ 1/2`.
///
/// ```
/// let p = noisy_channel::families::binary_flip(0.1)?;
/// assert!((p.entry(0, 1) - 0.4).abs() < 1e-12);
/// # Ok::<(), noisy_channel::NoiseError>(())
/// ```
pub fn binary_flip(epsilon: f64) -> Result<NoiseMatrix, NoiseError> {
    if !(epsilon.is_finite() && epsilon > 0.0 && epsilon <= 0.5) {
        return Err(NoiseError::InvalidEpsilon {
            value: epsilon,
            max: 0.5,
        });
    }
    NoiseMatrix::from_rows(vec![
        vec![0.5 + epsilon, 0.5 - epsilon],
        vec![0.5 - epsilon, 0.5 + epsilon],
    ])
}

/// The uniform k-ary noise matrix: `1/k + ε` on the diagonal and
/// `1/k − ε/(k−1)` everywhere else.
///
/// This is the "natural generalization of the noise matrix in \[19\]" from
/// Section 4 of the paper, and it is (ε, δ)-m.p. for every `δ > 0` with
/// respect to any opinion.
///
/// # Errors
///
/// * [`NoiseError::TooFewOpinions`] if `k < 2`.
/// * [`NoiseError::InvalidEpsilon`] unless `0 < ε ≤ 1 − 1/k`.
pub fn uniform(k: usize, epsilon: f64) -> Result<NoiseMatrix, NoiseError> {
    if k < 2 {
        return Err(NoiseError::TooFewOpinions { found: k });
    }
    let max = 1.0 - 1.0 / k as f64;
    if !(epsilon.is_finite() && epsilon > 0.0 && epsilon <= max + 1e-12) {
        return Err(NoiseError::InvalidEpsilon {
            value: epsilon,
            max,
        });
    }
    let diag = 1.0 / k as f64 + epsilon;
    let off = 1.0 / k as f64 - epsilon / (k as f64 - 1.0);
    let rows = (0..k)
        .map(|i| (0..k).map(|j| if i == j { diag } else { off }).collect())
        .collect();
    NoiseMatrix::from_rows(rows)
}

/// Cyclic ("close opinion") noise: an opinion survives with probability
/// `1 − 2λ` and is switched to each of its two cyclic neighbours
/// `i ± 1 (mod k)` with probability `λ`.
///
/// This models the "i′ could be picked as one of the close opinions" pattern
/// mentioned in Section 1.2.2.
///
/// # Errors
///
/// * [`NoiseError::TooFewOpinions`] if `k < 3` (for `k = 2` use
///   [`binary_flip`]).
/// * [`NoiseError::InvalidEpsilon`] unless `0 < λ < 1/2`.
pub fn cyclic(k: usize, lambda: f64) -> Result<NoiseMatrix, NoiseError> {
    if k < 3 {
        return Err(NoiseError::TooFewOpinions { found: k });
    }
    if !(lambda.is_finite() && lambda > 0.0 && lambda < 0.5) {
        return Err(NoiseError::InvalidEpsilon {
            value: lambda,
            max: 0.5,
        });
    }
    let rows = (0..k)
        .map(|i| {
            let mut row = vec![0.0; k];
            row[i] = 1.0 - 2.0 * lambda;
            row[(i + 1) % k] += lambda;
            row[(i + k - 1) % k] += lambda;
            row
        })
        .collect();
    NoiseMatrix::from_rows(rows)
}

/// Resetting noise: with probability `λ` the transmitted opinion is replaced
/// by the fixed opinion `target`, otherwise it survives unchanged.
///
/// This models the "i′ could be reset to, say, i = 1" pattern from
/// Section 1.2.2. It is *not* majority preserving with respect to any
/// opinion other than `target` once `λ` is large enough.
///
/// # Errors
///
/// * [`NoiseError::TooFewOpinions`] if `k < 2`.
/// * [`NoiseError::OpinionOutOfRange`] if `target ≥ k`.
/// * [`NoiseError::InvalidEpsilon`] unless `0 < λ < 1`.
pub fn reset_to_opinion(k: usize, lambda: f64, target: usize) -> Result<NoiseMatrix, NoiseError> {
    if k < 2 {
        return Err(NoiseError::TooFewOpinions { found: k });
    }
    if target >= k {
        return Err(NoiseError::OpinionOutOfRange {
            opinion: target,
            num_opinions: k,
        });
    }
    if !(lambda.is_finite() && lambda > 0.0 && lambda < 1.0) {
        return Err(NoiseError::InvalidEpsilon {
            value: lambda,
            max: 1.0,
        });
    }
    let rows = (0..k)
        .map(|i| {
            let mut row = vec![0.0; k];
            row[i] += 1.0 - lambda;
            row[target] += lambda;
            row
        })
        .collect();
    NoiseMatrix::from_rows(rows)
}

/// The diagonally-dominant counterexample of Section 4.
///
/// The paper displays the matrix
///
/// ```text
/// ⎛ 1/2+ε    0     1/2−ε ⎞
/// ⎜ 1/2−ε  1/2+ε     0   ⎟
/// ⎝   0    1/2−ε   1/2+ε ⎠
/// ```
///
/// and multiplies it by the δ-biased *column* vector
/// `c = (1/2 + δ, 1/2 − δ, 0)ᵀ`. In this crate the noise acts on row
/// vectors (`c ↦ c · P`, Eq. (2) with `p_{i,j} = Pr[i received as j]`), so
/// the equivalent counterexample is the transpose: each opinion `i` is kept
/// with probability `1/2 + ε` and switched to `i + 1 (mod 3)` with
/// probability `1/2 − ε`. Despite being diagonally dominant, for
/// `ε, δ < 1/6` the matrix does not even preserve the majority of the
/// δ-biased distribution `c = (1/2 + δ, 1/2 − δ, 0)`.
///
/// # Errors
///
/// Returns [`NoiseError::InvalidEpsilon`] unless `0 < ε ≤ 1/2`.
pub fn diagonally_dominant_counterexample(epsilon: f64) -> Result<NoiseMatrix, NoiseError> {
    if !(epsilon.is_finite() && epsilon > 0.0 && epsilon <= 0.5) {
        return Err(NoiseError::InvalidEpsilon {
            value: epsilon,
            max: 0.5,
        });
    }
    let a = 0.5 + epsilon;
    let b = 0.5 - epsilon;
    NoiseMatrix::from_rows(vec![
        vec![a, b, 0.0],
        vec![0.0, a, b],
        vec![b, 0.0, a],
    ])
}

/// A near-uniform band matrix in the family of Eq. (17): diagonal entries
/// equal to `p`, off-diagonal entries interpolating between `q_l` and `q_u`
/// deterministically (entries within a row increase linearly from `q_l` to
/// `q_u` and are then rescaled so the row sums to one, keeping the diagonal
/// at `p`).
///
/// Eq. (18) of the paper shows that any such matrix is
/// `((p − q_u)/2, δ)`-m.p. provided `(p − q_u) δ / 2 ≥ q_u − q_l`.
///
/// # Errors
///
/// * [`NoiseError::TooFewOpinions`] if `k < 2`.
/// * [`NoiseError::InvalidEpsilon`] if the parameters cannot form a
///   stochastic matrix (`p ∉ (0, 1)`, `q_l > q_u`, or negative band values).
pub fn near_uniform_band(
    k: usize,
    p: f64,
    q_l: f64,
    q_u: f64,
) -> Result<NoiseMatrix, NoiseError> {
    if k < 2 {
        return Err(NoiseError::TooFewOpinions { found: k });
    }
    if !(p > 0.0 && p < 1.0) || q_l < 0.0 || q_u < q_l || !p.is_finite() {
        return Err(NoiseError::InvalidEpsilon { value: p, max: 1.0 });
    }
    let off_count = (k - 1) as f64;
    let rows = (0..k)
        .map(|i| {
            // Raw off-diagonal values spread over [q_l, q_u].
            let mut raw: Vec<f64> = (0..k - 1)
                .map(|t| {
                    if k == 2 {
                        (q_l + q_u) / 2.0
                    } else {
                        q_l + (q_u - q_l) * t as f64 / (k - 2).max(1) as f64
                    }
                })
                .collect();
            // Rescale so the row sums to one with the diagonal fixed at p.
            let raw_sum: f64 = raw.iter().sum();
            let target = 1.0 - p;
            if raw_sum > 0.0 {
                for v in &mut raw {
                    *v *= target / raw_sum;
                }
            } else {
                for v in &mut raw {
                    *v = target / off_count;
                }
            }
            let mut row = Vec::with_capacity(k);
            let mut it = raw.into_iter();
            for j in 0..k {
                if j == i {
                    row.push(p);
                } else {
                    row.push(it.next().expect("k-1 off-diagonal entries"));
                }
            }
            row
        })
        .collect();
    NoiseMatrix::from_rows(rows)
}

/// A random row-stochastic matrix whose diagonal is boosted by `diag_boost`
/// (useful for fuzzing the majority-preservation test and the simulator).
///
/// Each row is drawn by sampling `k` exponential-like weights, normalizing,
/// and then mixing with the identity: `row = diag_boost · e_i +
/// (1 − diag_boost) · dirichlet`.
///
/// # Errors
///
/// * [`NoiseError::TooFewOpinions`] if `k < 2`.
/// * [`NoiseError::InvalidEpsilon`] unless `0 ≤ diag_boost ≤ 1`.
pub fn random_stochastic<R: Rng + ?Sized>(
    k: usize,
    diag_boost: f64,
    rng: &mut R,
) -> Result<NoiseMatrix, NoiseError> {
    if k < 2 {
        return Err(NoiseError::TooFewOpinions { found: k });
    }
    if !(0.0..=1.0).contains(&diag_boost) || !diag_boost.is_finite() {
        return Err(NoiseError::InvalidEpsilon {
            value: diag_boost,
            max: 1.0,
        });
    }
    let rows = (0..k)
        .map(|i| {
            // Sample positive weights (inverse-CDF of Exp(1)) and normalize.
            let weights: Vec<f64> = (0..k)
                .map(|_| -f64::ln(1.0 - rng.gen::<f64>()).max(1e-12))
                .collect();
            let sum: f64 = weights.iter().sum();
            let mut row: Vec<f64> = weights
                .into_iter()
                .map(|w| (1.0 - diag_boost) * w / sum)
                .collect();
            row[i] += diag_boost;
            // Normalize defensively against floating-point drift.
            let total: f64 = row.iter().sum();
            for v in &mut row {
                *v /= total;
            }
            row
        })
        .collect();
    NoiseMatrix::from_rows(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_rows_stochastic(p: &NoiseMatrix) {
        for row in p.iter_rows() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&v| v >= -1e-12));
        }
    }

    #[test]
    fn binary_flip_matches_eq_1() {
        let p = binary_flip(0.2).unwrap();
        assert_eq!(p.num_opinions(), 2);
        assert!((p.entry(0, 0) - 0.7).abs() < 1e-12);
        assert!((p.entry(1, 0) - 0.3).abs() < 1e-12);
        assert_rows_stochastic(&p);
        assert!(binary_flip(0.0).is_err());
        assert!(binary_flip(0.6).is_err());
        assert!(binary_flip(f64::NAN).is_err());
    }

    #[test]
    fn uniform_reduces_to_binary_flip_for_k_2() {
        let u = uniform(2, 0.2).unwrap();
        let b = binary_flip(0.2).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((u.entry(i, j) - b.entry(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn uniform_has_correct_entries_and_bounds() {
        let k = 5;
        let eps = 0.1;
        let p = uniform(k, eps).unwrap();
        assert!((p.entry(2, 2) - (0.2 + 0.1)).abs() < 1e-12);
        assert!((p.entry(2, 3) - (0.2 - 0.1 / 4.0)).abs() < 1e-12);
        assert_rows_stochastic(&p);
        // Epsilon too large makes off-diagonal entries negative.
        assert!(uniform(5, 0.9).is_err());
        assert!(uniform(1, 0.1).is_err());
        // Epsilon exactly at the limit is accepted (off-diagonals become 0).
        let limit = uniform(4, 0.75).unwrap();
        assert!((limit.entry(0, 1)).abs() < 1e-9);
    }

    #[test]
    fn cyclic_spreads_to_neighbours_only() {
        let p = cyclic(5, 0.1).unwrap();
        assert!((p.entry(0, 0) - 0.8).abs() < 1e-12);
        assert!((p.entry(0, 1) - 0.1).abs() < 1e-12);
        assert!((p.entry(0, 4) - 0.1).abs() < 1e-12);
        assert_eq!(p.entry(0, 2), 0.0);
        assert_rows_stochastic(&p);
        assert!(cyclic(2, 0.1).is_err());
        assert!(cyclic(5, 0.5).is_err());
    }

    #[test]
    fn reset_concentrates_on_target() {
        let p = reset_to_opinion(4, 0.25, 2).unwrap();
        assert!((p.entry(0, 0) - 0.75).abs() < 1e-12);
        assert!((p.entry(0, 2) - 0.25).abs() < 1e-12);
        // The target keeps its opinion with probability 1.
        assert!((p.entry(2, 2) - 1.0).abs() < 1e-12);
        assert_rows_stochastic(&p);
        assert!(reset_to_opinion(4, 0.25, 7).is_err());
        assert!(reset_to_opinion(4, 1.5, 0).is_err());
    }

    #[test]
    fn counterexample_matches_the_paper() {
        let eps = 0.1;
        let p = diagonally_dominant_counterexample(eps).unwrap();
        assert!(p.is_diagonally_dominant());
        assert_rows_stochastic(&p);
        // Multiplying by c = (1/2+delta, 1/2-delta, 0) must *reverse* the
        // majority for small eps and delta (Section 4).
        let delta = 0.1;
        let c = [0.5 + delta, 0.5 - delta, 0.0];
        let out = p.apply(&c);
        assert!(
            out[0] < out[1],
            "the counterexample should flip the majority: got {out:?}"
        );
    }

    #[test]
    fn near_uniform_band_is_stochastic_and_keeps_diagonal() {
        let p = near_uniform_band(6, 0.4, 0.1, 0.14).unwrap();
        assert_rows_stochastic(&p);
        for i in 0..6 {
            assert!((p.entry(i, i) - 0.4).abs() < 1e-12);
        }
        assert!(near_uniform_band(1, 0.4, 0.1, 0.14).is_err());
        assert!(near_uniform_band(4, 1.4, 0.1, 0.14).is_err());
        assert!(near_uniform_band(4, 0.4, 0.2, 0.1).is_err());
    }

    #[test]
    fn random_stochastic_is_valid_and_respects_boost() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = random_stochastic(6, 0.5, &mut rng).unwrap();
        assert_rows_stochastic(&p);
        for i in 0..6 {
            assert!(p.entry(i, i) >= 0.5 - 1e-9);
        }
        assert!(random_stochastic(1, 0.5, &mut rng).is_err());
        assert!(random_stochastic(3, 1.5, &mut rng).is_err());
    }
}
