//! The (ε, δ)-majority-preserving membership test (Section 4 of the paper).
//!
//! Definition 2 of the paper: a noise matrix `P` is **(ε, δ)-majority
//! preserving** with respect to opinion `m` if, for every opinion
//! distribution `c` that is δ-biased towards `m`
//! (`c_m − c_i ≥ δ` for all `i ≠ m`),
//!
//! ```text
//! (c · P)_m − (c · P)_i > ε δ     for every i ≠ m.
//! ```
//!
//! Section 4 observes that checking the property amounts to solving, for
//! every `i ≠ m`, the linear program
//!
//! ```text
//! minimize    (c · P)_m − (c · P)_i
//! subject to  Σ_j c_j = 1
//!             c_m − c_j ≥ δ        for all j ≠ m
//!             c_j ≥ 0
//! ```
//!
//! and checking that every optimum exceeds `ε δ`. The functions in this
//! module compute those optima exactly with the in-repo simplex solver
//! ([`noisy_lp`]), expose them as a [`MpReport`], and also provide the
//! closed-form sufficient condition of Eq. (18) for near-uniform matrices.

use crate::error::NoiseError;
use crate::matrix::NoiseMatrix;
use noisy_lp::{LinearProgram, LpError, Relation};

/// The worst-case margin for one "competitor" opinion `i ≠ m`:
/// the minimum of `(c · P)_m − (c · P)_i` over all δ-biased distributions.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PairwiseMargin {
    /// The competitor opinion `i`.
    pub competitor: usize,
    /// The minimum of `(c · P)_m − (c · P)_i` over δ-biased `c`.
    pub margin: f64,
    /// A δ-biased distribution attaining (within numerical tolerance) the
    /// minimum — the *worst-case* opinion distribution for this competitor.
    pub worst_distribution: Vec<f64>,
}

/// Result of the majority-preservation analysis of a noise matrix with
/// respect to a plurality opinion `m` and a bias `δ`.
///
/// Produced by [`NoiseMatrix::majority_preservation`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MpReport {
    plurality: usize,
    delta: f64,
    margins: Vec<PairwiseMargin>,
}

impl MpReport {
    /// The plurality opinion `m` the analysis was run for.
    pub fn plurality(&self) -> usize {
        self.plurality
    }

    /// The bias `δ` the analysis was run for.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The per-competitor worst-case margins.
    pub fn margins(&self) -> &[PairwiseMargin] {
        &self.margins
    }

    /// The smallest margin over all competitors, i.e.
    /// `min_{i ≠ m} min_{δ-biased c} (c·P)_m − (c·P)_i`.
    pub fn worst_margin(&self) -> f64 {
        self.margins
            .iter()
            .map(|m| m.margin)
            .fold(f64::INFINITY, f64::min)
    }

    /// The competitor opinion attaining the worst margin.
    pub fn worst_competitor(&self) -> usize {
        self.margins
            .iter()
            .min_by(|a, b| a.margin.partial_cmp(&b.margin).expect("finite margins"))
            .map(|m| m.competitor)
            .expect("at least one competitor (k >= 2)")
    }

    /// `true` if the plurality opinion always stays strictly ahead of every
    /// competitor in expectation: the worst margin is strictly positive.
    ///
    /// This is the qualitative requirement discussed in Section 4: if it
    /// fails, there exists a δ-biased distribution from which the plurality
    /// cannot be recovered by any natural protocol without knowledge of `P`.
    pub fn preserves_majority(&self) -> bool {
        self.worst_margin() > 0.0
    }

    /// `true` if the matrix is (ε, δ)-majority-preserving per Definition 2:
    /// the worst margin strictly exceeds `ε · δ`.
    pub fn is_majority_preserving(&self, epsilon: f64) -> bool {
        self.worst_margin() > epsilon * self.delta
    }

    /// The largest `ε` for which the matrix is (ε, δ)-m.p. (i.e.
    /// `worst_margin / δ`), or 0 if the matrix does not even preserve the
    /// majority.
    pub fn max_epsilon(&self) -> f64 {
        (self.worst_margin() / self.delta).max(0.0)
    }
}

impl NoiseMatrix {
    /// Runs the (ε, δ)-majority-preservation analysis of Definition 2 /
    /// Section 4 with respect to plurality opinion `m` and bias `δ`,
    /// returning the worst-case margins for every competitor opinion.
    ///
    /// # Errors
    ///
    /// * [`NoiseError::OpinionOutOfRange`] if `m ≥ k`.
    /// * [`NoiseError::InvalidDelta`] unless `0 < δ ≤ 1`.
    /// * [`NoiseError::LpFailure`] if the underlying LP solver fails
    ///   unexpectedly (this indicates a bug, not a property of the matrix).
    ///
    /// # Example
    ///
    /// ```
    /// use noisy_channel::NoiseMatrix;
    /// # fn main() -> Result<(), noisy_channel::NoiseError> {
    /// let p = NoiseMatrix::binary_flip(0.2)?;
    /// let report = p.majority_preservation(0, 0.1)?;
    /// // For the binary flip matrix the worst margin is exactly 2 ε δ.
    /// assert!((report.worst_margin() - 2.0 * 0.2 * 0.1).abs() < 1e-7);
    /// assert!(report.is_majority_preserving(0.2));
    /// # Ok(())
    /// # }
    /// ```
    pub fn majority_preservation(&self, m: usize, delta: f64) -> Result<MpReport, NoiseError> {
        let k = self.num_opinions();
        if m >= k {
            return Err(NoiseError::OpinionOutOfRange {
                opinion: m,
                num_opinions: k,
            });
        }
        if !(delta.is_finite() && delta > 0.0 && delta <= 1.0) {
            return Err(NoiseError::InvalidDelta { value: delta });
        }
        let mut margins = Vec::with_capacity(k - 1);
        for i in (0..k).filter(|&i| i != m) {
            margins.push(self.pairwise_margin(m, i, delta)?);
        }
        Ok(MpReport {
            plurality: m,
            delta,
            margins,
        })
    }

    /// Solves the single-competitor LP: the minimum of
    /// `(c · P)_m − (c · P)_i` over δ-biased distributions `c`.
    fn pairwise_margin(
        &self,
        m: usize,
        i: usize,
        delta: f64,
    ) -> Result<PairwiseMargin, NoiseError> {
        let k = self.num_opinions();
        // (c·P)_m − (c·P)_i = Σ_j c_j (p_{j,m} − p_{j,i}).
        let objective: Vec<f64> = (0..k).map(|j| self.entry(j, m) - self.entry(j, i)).collect();
        let mut lp = LinearProgram::minimize(objective);
        let add = |lp: &mut LinearProgram,
                   coeffs: Vec<f64>,
                   rel: Relation,
                   rhs: f64|
         -> Result<(), NoiseError> {
            lp.add_constraint(coeffs, rel, rhs)
                .map(|_| ())
                .map_err(|e| NoiseError::LpFailure(e.to_string()))
        };
        // Σ_j c_j = 1.
        add(&mut lp, vec![1.0; k], Relation::Eq, 1.0)?;
        // c_m − c_j ≥ δ for all j ≠ m.
        for j in (0..k).filter(|&j| j != m) {
            let mut row = vec![0.0; k];
            row[m] = 1.0;
            row[j] = -1.0;
            add(&mut lp, row, Relation::Ge, delta)?;
        }
        match lp.solve() {
            Ok(solution) => Ok(PairwiseMargin {
                competitor: i,
                margin: solution.objective_value(),
                worst_distribution: solution.into_variables(),
            }),
            Err(LpError::Infeasible) => {
                // δ so large that no δ-biased distribution exists can only
                // happen for δ > 1, which was rejected above; treat as a bug.
                Err(NoiseError::LpFailure(
                    "majority-preservation LP unexpectedly infeasible".to_string(),
                ))
            }
            Err(e) => Err(NoiseError::LpFailure(e.to_string())),
        }
    }
}

/// The closed-form sufficient condition of Eq. (18): a matrix of the
/// near-uniform family of Eq. (17) — diagonal `p`, off-diagonal entries in
/// `[q_l, q_u]` — is `((p − q_u)/2, δ)`-m.p. provided
///
/// ```text
/// (p − q_u) · δ / 2  ≥  q_u − q_l.
/// ```
///
/// Returns `Some(ε)` with `ε = (p − q_u)/2` when the condition holds, and
/// `None` otherwise.
///
/// ```
/// use noisy_channel::mp::near_uniform_sufficient_epsilon;
/// // A perfectly uniform band (q_l = q_u) always qualifies.
/// assert!(near_uniform_sufficient_epsilon(0.4, 0.2, 0.2, 0.05).is_some());
/// // A band too wide for the requested bias does not.
/// assert!(near_uniform_sufficient_epsilon(0.4, 0.1, 0.3, 0.05).is_none());
/// ```
pub fn near_uniform_sufficient_epsilon(p: f64, q_l: f64, q_u: f64, delta: f64) -> Option<f64> {
    if p <= q_u || delta <= 0.0 || q_u < q_l {
        return None;
    }
    let epsilon = (p - q_u) / 2.0;
    if (p - q_u) * delta / 2.0 >= (q_u - q_l) - 1e-15 {
        Some(epsilon)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    #[test]
    fn binary_flip_margin_is_two_eps_delta() {
        // For P = [[1/2+e, 1/2-e], [1/2-e, 1/2+e]]:
        // (cP)_0 - (cP)_1 = 2e (c_0 - c_1), minimized at c_0 - c_1 = delta.
        for &(eps, delta) in &[(0.1, 0.05), (0.25, 0.5), (0.4, 1.0)] {
            let p = NoiseMatrix::binary_flip(eps).unwrap();
            let report = p.majority_preservation(0, delta).unwrap();
            assert!(
                (report.worst_margin() - 2.0 * eps * delta).abs() < 1e-7,
                "eps={eps} delta={delta}: margin {}",
                report.worst_margin()
            );
            assert!(report.is_majority_preserving(eps));
            assert!((report.max_epsilon() - 2.0 * eps).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_kary_margin_matches_closed_form() {
        // For the uniform family, (cP)_m - (cP)_i = (e + e/(k-1)) (c_m - c_i),
        // minimized at c_m - c_i = delta.
        let k = 4;
        let eps = 0.12;
        let delta = 0.2;
        let p = NoiseMatrix::uniform(k, eps).unwrap();
        let report = p.majority_preservation(1, delta).unwrap();
        let expected = (eps + eps / (k as f64 - 1.0)) * delta;
        assert!(
            (report.worst_margin() - expected).abs() < 1e-7,
            "margin {} expected {expected}",
            report.worst_margin()
        );
        // It is m.p. for every delta (Section 4): epsilon slack is positive.
        assert!(report.is_majority_preserving(eps));
    }

    #[test]
    fn uniform_family_is_mp_with_respect_to_every_opinion() {
        let p = NoiseMatrix::uniform(5, 0.1).unwrap();
        for m in 0..5 {
            let report = p.majority_preservation(m, 0.01).unwrap();
            assert!(report.preserves_majority(), "opinion {m}");
            assert_eq!(report.plurality(), m);
            assert_eq!(report.margins().len(), 4);
        }
    }

    #[test]
    fn diagonally_dominant_counterexample_fails_for_small_eps_delta() {
        // Section 4: for eps, delta < 1/6 the matrix does not preserve the
        // majority at all.
        let p = families::diagonally_dominant_counterexample(0.1).unwrap();
        let report = p.majority_preservation(0, 0.1).unwrap();
        assert!(report.worst_margin() < 0.0);
        assert!(!report.preserves_majority());
        assert!(!report.is_majority_preserving(0.1));
        assert_eq!(report.max_epsilon(), 0.0);
        // The worst-case distribution found by the LP must itself be
        // delta-biased and certify the violation.
        let worst = &report.margins()[report.worst_competitor() - 1].worst_distribution;
        let out = p.apply(worst);
        assert!(out[0] < out[report.worst_competitor()] + 1e-9);
    }

    #[test]
    fn diagonally_dominant_counterexample_recovers_for_large_eps() {
        // With eps close to 1/2 the same matrix becomes nearly noiseless and
        // preserves the majority again.
        let p = families::diagonally_dominant_counterexample(0.45).unwrap();
        let report = p.majority_preservation(0, 0.3).unwrap();
        assert!(report.preserves_majority());
    }

    #[test]
    fn identity_margin_is_exactly_delta() {
        let p = NoiseMatrix::identity(3).unwrap();
        let report = p.majority_preservation(2, 0.25).unwrap();
        assert!((report.worst_margin() - 0.25).abs() < 1e-7);
        assert!((report.max_epsilon() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn reset_noise_is_not_mp_towards_other_opinions() {
        // Resetting towards opinion 0 with probability 0.6 destroys any
        // small bias towards opinion 1.
        let p = families::reset_to_opinion(3, 0.6, 0).unwrap();
        let report = p.majority_preservation(1, 0.05).unwrap();
        assert!(!report.preserves_majority());
        // But it is trivially m.p. towards the reset target itself.
        let report0 = p.majority_preservation(0, 0.05).unwrap();
        assert!(report0.preserves_majority());
    }

    #[test]
    fn worst_distribution_is_delta_biased() {
        let p = NoiseMatrix::uniform(4, 0.15).unwrap();
        let delta = 0.1;
        let report = p.majority_preservation(0, delta).unwrap();
        for pm in report.margins() {
            let c = &pm.worst_distribution;
            let sum: f64 = c.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            for j in 1..4 {
                assert!(c[0] - c[j] >= delta - 1e-6, "c = {c:?}");
            }
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let p = NoiseMatrix::uniform(3, 0.1).unwrap();
        assert!(matches!(
            p.majority_preservation(3, 0.1),
            Err(NoiseError::OpinionOutOfRange { .. })
        ));
        assert!(matches!(
            p.majority_preservation(0, 0.0),
            Err(NoiseError::InvalidDelta { .. })
        ));
        assert!(matches!(
            p.majority_preservation(0, 1.5),
            Err(NoiseError::InvalidDelta { .. })
        ));
    }

    #[test]
    fn eq_18_sufficient_condition_implies_lp_verdict() {
        // Build matrices of the Eq. (17) family and check that whenever the
        // closed-form sufficient condition grants an epsilon, the exact LP
        // analysis confirms the matrix is (eps, delta)-m.p.
        let cases = [
            (4usize, 0.4, 0.18, 0.22, 0.4),
            (5usize, 0.5, 0.12, 0.125, 0.2),
            (3usize, 0.6, 0.2, 0.2, 0.05),
        ];
        for &(k, p_diag, q_l, q_u, delta) in &cases {
            let matrix = families::near_uniform_band(k, p_diag, q_l, q_u).unwrap();
            if let Some(eps) = near_uniform_sufficient_epsilon(p_diag, q_l, q_u, delta) {
                let report = matrix.majority_preservation(0, delta).unwrap();
                assert!(
                    report.worst_margin() > eps * delta - 1e-9,
                    "k={k}: margin {} vs eps*delta {}",
                    report.worst_margin(),
                    eps * delta
                );
            }
        }
    }
}
