//! Declarative noise-matrix specifications.
//!
//! A [`NoiseSpec`] names one of the paper's matrix [`families`](crate::families)
//! together with its parameters, *without* fixing the opinion count `k`:
//! the concrete [`NoiseMatrix`] is built later with [`NoiseSpec::build`].
//! This is what makes noise configurable from scenario spec files — the
//! experiment layer stores and round-trips the textual form
//! (`uniform(0.25)`, `cyclic(0.05)`, …) and materializes the matrix per
//! sweep point.
//!
//! The textual grammar is `family(arg, …)`:
//!
//! | text                  | family                                            |
//! |-----------------------|---------------------------------------------------|
//! | `uniform(eps)`        | [`families::uniform`]                             |
//! | `flip(eps)`           | [`families::binary_flip`] (k = 2 only)            |
//! | `cyclic(lambda)`      | [`families::cyclic`]                              |
//! | `reset(lambda, i)`    | [`families::reset_to_opinion`]                    |
//! | `diag(eps)`           | [`families::diagonally_dominant_counterexample`] (k = 3 only) |
//! | `band(p, q_l, q_u)`   | [`families::near_uniform_band`]                   |
//!
//! ```
//! use noisy_channel::NoiseSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec: NoiseSpec = "uniform(0.25)".parse()?;
//! let matrix = spec.build(3)?;
//! assert!((matrix.entry(0, 0) - (1.0 / 3.0 + 0.25)).abs() < 1e-12);
//! // The canonical text form round-trips.
//! assert_eq!(spec.to_string().parse::<NoiseSpec>()?, spec);
//! # Ok(())
//! # }
//! ```

use crate::error::NoiseError;
use crate::families;
use crate::matrix::NoiseMatrix;
use std::fmt;
use std::str::FromStr;

/// A noise-matrix family plus its parameters, independent of the opinion
/// count `k`.
///
/// The textual grammar (produced by `Display`, parsed by `FromStr`) is
/// `family(arg, …)`: `uniform(eps)`, `flip(eps)` (k = 2 only),
/// `cyclic(lambda)`, `reset(lambda, target)`, `diag(eps)` (k = 3 only) and
/// `band(p, q_low, q_high)`, each mapping to the constructor of the same
/// family in [`families`].
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseSpec {
    /// The uniform k-ary family: `1/k + ε` on the diagonal
    /// ([`families::uniform`]).
    Uniform {
        /// Diagonal boost ε.
        epsilon: f64,
    },
    /// The binary ε-flip of Eq. (1) ([`families::binary_flip`]); only valid
    /// for `k = 2`.
    BinaryFlip {
        /// Diagonal boost ε.
        epsilon: f64,
    },
    /// Cyclic "close opinion" noise ([`families::cyclic`]).
    Cyclic {
        /// Switch probability λ to each cyclic neighbour.
        lambda: f64,
    },
    /// Resetting noise towards a fixed opinion
    /// ([`families::reset_to_opinion`]).
    Reset {
        /// Reset probability λ.
        lambda: f64,
        /// The opinion every message is reset to.
        target: usize,
    },
    /// The diagonally-dominant counterexample of Section 4
    /// ([`families::diagonally_dominant_counterexample`]); only valid for
    /// `k = 3`.
    DiagonallyDominant {
        /// Diagonal boost ε.
        epsilon: f64,
    },
    /// A near-uniform band matrix of Eq. (17)
    /// ([`families::near_uniform_band`]).
    Band {
        /// Diagonal entry `p`.
        p: f64,
        /// Lower end of the off-diagonal band.
        q_low: f64,
        /// Upper end of the off-diagonal band.
        q_high: f64,
    },
}

impl NoiseSpec {
    /// Builds the concrete matrix for `k` opinions.
    ///
    /// # Errors
    ///
    /// Propagates the family constructor's validation errors; additionally
    /// rejects `flip` with `k ≠ 2` and `diag` with `k ≠ 3` (those families
    /// are defined at a fixed size) with [`NoiseError::InvalidSpec`].
    pub fn build(&self, k: usize) -> Result<NoiseMatrix, NoiseError> {
        match *self {
            NoiseSpec::Uniform { epsilon } => families::uniform(k, epsilon),
            NoiseSpec::BinaryFlip { epsilon } => {
                if k != 2 {
                    return Err(NoiseError::InvalidSpec(format!(
                        "flip(..) is a binary family and cannot serve k = {k} opinions"
                    )));
                }
                families::binary_flip(epsilon)
            }
            NoiseSpec::Cyclic { lambda } => families::cyclic(k, lambda),
            NoiseSpec::Reset { lambda, target } => families::reset_to_opinion(k, lambda, target),
            NoiseSpec::DiagonallyDominant { epsilon } => {
                if k != 3 {
                    return Err(NoiseError::InvalidSpec(format!(
                        "diag(..) is defined over exactly 3 opinions, not k = {k}"
                    )));
                }
                families::diagonally_dominant_counterexample(epsilon)
            }
            NoiseSpec::Band { p, q_low, q_high } => {
                families::near_uniform_band(k, p, q_low, q_high)
            }
        }
    }

    /// The family's noise-strength parameter, when it has a single scalar
    /// one that an ε-sweep can meaningfully vary (`uniform`, `flip`,
    /// `diag`).
    pub fn epsilon_parameter(&self) -> Option<f64> {
        match *self {
            NoiseSpec::Uniform { epsilon }
            | NoiseSpec::BinaryFlip { epsilon }
            | NoiseSpec::DiagonallyDominant { epsilon } => Some(epsilon),
            _ => None,
        }
    }

    /// This spec with its ε parameter replaced, for families that have one
    /// (see [`epsilon_parameter`](Self::epsilon_parameter)); other families
    /// are returned unchanged — an ε-sweep over them varies only the
    /// protocol schedule, not the channel.
    pub fn with_epsilon(&self, epsilon: f64) -> NoiseSpec {
        match *self {
            NoiseSpec::Uniform { .. } => NoiseSpec::Uniform { epsilon },
            NoiseSpec::BinaryFlip { .. } => NoiseSpec::BinaryFlip { epsilon },
            NoiseSpec::DiagonallyDominant { .. } => NoiseSpec::DiagonallyDominant { epsilon },
            ref other => other.clone(),
        }
    }
}

impl fmt::Display for NoiseSpec {
    /// The canonical textual form (parseable back via [`FromStr`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NoiseSpec::Uniform { epsilon } => write!(f, "uniform({epsilon})"),
            NoiseSpec::BinaryFlip { epsilon } => write!(f, "flip({epsilon})"),
            NoiseSpec::Cyclic { lambda } => write!(f, "cyclic({lambda})"),
            NoiseSpec::Reset { lambda, target } => write!(f, "reset({lambda}, {target})"),
            NoiseSpec::DiagonallyDominant { epsilon } => write!(f, "diag({epsilon})"),
            NoiseSpec::Band { p, q_low, q_high } => write!(f, "band({p}, {q_low}, {q_high})"),
        }
    }
}

impl FromStr for NoiseSpec {
    type Err = NoiseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || {
            NoiseError::InvalidSpec(format!(
                "malformed noise spec {s:?} (expected family(args): uniform(eps), flip(eps), \
                 cyclic(lambda), reset(lambda, target), diag(eps) or band(p, q_low, q_high))"
            ))
        };
        let s = s.trim();
        let open = s.find('(').ok_or_else(bad)?;
        if !s.ends_with(')') {
            return Err(bad());
        }
        let name = s[..open].trim();
        let args: Vec<&str> = s[open + 1..s.len() - 1]
            .split(',')
            .map(str::trim)
            .collect();
        let float = |i: usize| -> Result<f64, NoiseError> {
            args.get(i)
                .and_then(|a| a.parse::<f64>().ok())
                .ok_or_else(bad)
        };
        let int = |i: usize| -> Result<usize, NoiseError> {
            args.get(i)
                .and_then(|a| a.parse::<usize>().ok())
                .ok_or_else(bad)
        };
        let expect_arity = |n: usize| -> Result<(), NoiseError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(bad())
            }
        };
        match name {
            "uniform" => {
                expect_arity(1)?;
                Ok(NoiseSpec::Uniform { epsilon: float(0)? })
            }
            "flip" => {
                expect_arity(1)?;
                Ok(NoiseSpec::BinaryFlip { epsilon: float(0)? })
            }
            "cyclic" => {
                expect_arity(1)?;
                Ok(NoiseSpec::Cyclic { lambda: float(0)? })
            }
            "reset" => {
                expect_arity(2)?;
                Ok(NoiseSpec::Reset {
                    lambda: float(0)?,
                    target: int(1)?,
                })
            }
            "diag" => {
                expect_arity(1)?;
                Ok(NoiseSpec::DiagonallyDominant { epsilon: float(0)? })
            }
            "band" => {
                expect_arity(3)?;
                Ok(NoiseSpec::Band {
                    p: float(0)?,
                    q_low: float(1)?,
                    q_high: float(2)?,
                })
            }
            _ => Err(bad()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_specs() -> Vec<NoiseSpec> {
        vec![
            NoiseSpec::Uniform { epsilon: 0.25 },
            NoiseSpec::BinaryFlip { epsilon: 0.3 },
            NoiseSpec::Cyclic { lambda: 0.05 },
            NoiseSpec::Reset {
                lambda: 0.4,
                target: 1,
            },
            NoiseSpec::DiagonallyDominant { epsilon: 0.05 },
            NoiseSpec::Band {
                p: 0.5,
                q_low: 0.24,
                q_high: 0.26,
            },
        ]
    }

    #[test]
    fn display_round_trips_for_every_family() {
        for spec in all_specs() {
            let text = spec.to_string();
            let parsed: NoiseSpec = text.parse().expect("canonical text parses");
            assert_eq!(parsed, spec, "round-trip of {text}");
        }
    }

    #[test]
    fn build_matches_the_direct_family_constructors() {
        let spec = NoiseSpec::Uniform { epsilon: 0.2 };
        assert_eq!(spec.build(4).unwrap(), families::uniform(4, 0.2).unwrap());
        let spec = NoiseSpec::Reset {
            lambda: 0.3,
            target: 2,
        };
        assert_eq!(
            spec.build(3).unwrap(),
            families::reset_to_opinion(3, 0.3, 2).unwrap()
        );
    }

    #[test]
    fn fixed_size_families_reject_other_sizes() {
        assert!(NoiseSpec::BinaryFlip { epsilon: 0.3 }.build(3).is_err());
        assert!(NoiseSpec::BinaryFlip { epsilon: 0.3 }.build(2).is_ok());
        assert!(NoiseSpec::DiagonallyDominant { epsilon: 0.05 }.build(2).is_err());
        assert!(NoiseSpec::DiagonallyDominant { epsilon: 0.05 }.build(3).is_ok());
    }

    #[test]
    fn with_epsilon_reparameterizes_only_eps_families() {
        let uniform = NoiseSpec::Uniform { epsilon: 0.1 }.with_epsilon(0.4);
        assert_eq!(uniform, NoiseSpec::Uniform { epsilon: 0.4 });
        assert_eq!(uniform.epsilon_parameter(), Some(0.4));
        let cyclic = NoiseSpec::Cyclic { lambda: 0.05 };
        assert_eq!(cyclic.with_epsilon(0.4), cyclic);
        assert_eq!(cyclic.epsilon_parameter(), None);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for text in [
            "",
            "uniform",
            "uniform(",
            "uniform()",
            "uniform(a)",
            "uniform(0.1, 0.2)",
            "reset(0.1)",
            "warp(0.1)",
            "band(0.5, 0.2)",
        ] {
            assert!(text.parse::<NoiseSpec>().is_err(), "{text:?} must not parse");
        }
    }

    #[test]
    fn parsing_tolerates_whitespace() {
        let spec: NoiseSpec = "  reset( 0.4 ,  1 )  ".parse().unwrap();
        assert_eq!(
            spec,
            NoiseSpec::Reset {
                lambda: 0.4,
                target: 1
            }
        );
    }
}
