#!/usr/bin/env bash
# Bench-vs-release profile parity.
#
# BENCH_pushsim.json archives numbers measured by `cargo bench`, which
# compiles under cargo's `bench` profile; the experiment binaries ship
# under `--release`. Those numbers are only honest if both profiles hand
# rustc the same codegen flags — in particular the workspace's
# `lto = "thin"` / `codegen-units = 1` release settings, which the bench
# profile inherits. Cargo's inheritance rules have changed before, so CI
# asserts the parity instead of assuming it: compile the same crate
# (`pushsim`, the hot simulation core) under both profiles with `-v`,
# extract every `-C` flag from the two rustc invocations, and require the
# normalized flag sets to be identical.
#
# Exit status: 0 when the flag sets match, 1 (with a diff) when they do
# not. See README "Benchmarks" for the documented result.
set -euo pipefail
cd "$(dirname "$0")/.."

# The sorted `-C` flag set of the rustc invocation that compiles the
# named crate under the given cargo command, with the per-crate hash
# flags (`metadata`, `extra-filename`, `incremental`) dropped so two
# different crates are comparable. Touching the source forces the
# recompile so the verbose log actually contains the invocation.
codegen_flags() {
    local touch_file=$1 crate=$2
    shift 2
    touch "$touch_file"
    cargo "$@" -v 2>&1 |
        grep -- "--crate-name $crate " |
        head -n 1 |
        grep -oE -- '-C [^ ]+' |
        grep -vE -- '-C (metadata|extra-filename|incremental)' |
        sort
}

# Compare the final executables, where the profile actually bites: the
# bench harness binary (cargo profile `bench`) against a `--release`
# binary. The shared library crates are the same compilation units in
# both graphs, so comparing them would assert nothing.
release_flags=$(codegen_flags crates/bench/src/bin/xp.rs xp build --release -p noisy-bench --bin xp)
bench_flags=$(codegen_flags crates/bench/benches/bench_pushsim.rs bench_pushsim \
    bench -p noisy-bench --bench bench_pushsim --no-run)

if [ -z "$release_flags" ] || [ -z "$bench_flags" ]; then
    echo "error: could not extract rustc -C flags from the verbose cargo log" >&2
    exit 1
fi

if ! diff <(echo "$release_flags") <(echo "$bench_flags") >&2; then
    echo "error: bench profile codegen flags diverge from --release" >&2
    echo "       (left: --release, right: cargo bench)" >&2
    exit 1
fi

echo "bench profile matches --release; shared codegen flags:"
echo "$release_flags" | sed 's/^/    /'
